// Package loc measures implementation size per framework — a first cut at
// the "ever-challenging programmability problem" the paper's §VI names as
// future work ("we did not analyze the complexity of the algorithms from
// one framework to the next"). Lines of code is the bluntest of
// programmability measures, but it is the one §V-E itself reaches for
// ("LAGraph implements the batch Brandes algorithm, in a mere 97 lines").
package loc

import (
	"cmp"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Count is the code-size summary of one directory.
type Count struct {
	Name     string
	Files    int
	Code     int // non-blank, non-comment lines
	Comments int
	Blank    int
}

// Total returns all lines.
func (c Count) Total() int { return c.Code + c.Comments + c.Blank }

// CountDir tallies the Go source files (excluding _test.go) directly inside
// dir.
func CountDir(name, dir string) (Count, error) {
	c := Count{Name: name}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return c, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return c, err
		}
		c.Files++
		tallyFile(string(data), &c)
	}
	return c, nil
}

// tallyFile classifies each line of one file. Block comments are tracked
// across lines; a line containing both code and a comment counts as code.
func tallyFile(src string, c *Count) {
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case inBlock:
			c.Comments++
			if strings.Contains(trimmed, "*/") {
				inBlock = false
			}
		case trimmed == "":
			c.Blank++
		case strings.HasPrefix(trimmed, "//"):
			c.Comments++
		case strings.HasPrefix(trimmed, "/*"):
			c.Comments++
			if !strings.Contains(trimmed[2:], "*/") {
				inBlock = true
			}
		default:
			c.Code++
		}
	}
	// The final split element after a trailing newline is empty; correct
	// the off-by-one blank.
	if strings.HasSuffix(src, "\n") && c.Blank > 0 {
		c.Blank--
	}
}

// Report renders counts as an aligned table sorted by code size.
func Report(counts []Count) string {
	sorted := append([]Count(nil), counts...)
	slices.SortFunc(sorted, func(a, b Count) int { return cmp.Compare(a.Code, b.Code) })
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %8s %10s %7s\n", "Framework", "Files", "Code", "Comments", "Blank")
	for _, c := range sorted {
		fmt.Fprintf(&b, "%-14s %6d %8d %10d %7d\n", c.Name, c.Files, c.Code, c.Comments, c.Blank)
	}
	return b.String()
}

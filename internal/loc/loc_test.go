package loc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gapbench/internal/loc"
)

func TestCountDir(t *testing.T) {
	dir := t.TempDir()
	src := `// Package x.
package x

/*
block comment
*/
func F() int {
	return 1 // trailing comment counts as code
}
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tests and non-Go files must be ignored.
	os.WriteFile(filepath.Join(dir, "x_test.go"), []byte("package x\nfunc TestX(){}\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("hi\n"), 0o644)

	c, err := loc.CountDir("x", dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Files != 1 {
		t.Fatalf("files = %d, want 1", c.Files)
	}
	// Code: package x, func F() int {, return 1, }  => 4
	if c.Code != 4 {
		t.Fatalf("code = %d, want 4", c.Code)
	}
	// Comments: line comment + 3 block lines => 4
	if c.Comments != 4 {
		t.Fatalf("comments = %d, want 4", c.Comments)
	}
	if c.Blank != 1 {
		t.Fatalf("blank = %d, want 1", c.Blank)
	}
	if c.Total() != 9 {
		t.Fatalf("total = %d, want 9", c.Total())
	}
}

func TestCountDirMissing(t *testing.T) {
	if _, err := loc.CountDir("x", "/definitely/not/here"); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestReportSortsByCode(t *testing.T) {
	out := loc.Report([]loc.Count{
		{Name: "big", Code: 100},
		{Name: "small", Code: 10},
	})
	if strings.Index(out, "small") > strings.Index(out, "big") {
		t.Fatalf("report not sorted ascending:\n%s", out)
	}
	if !strings.Contains(out, "Framework") {
		t.Fatal("missing header")
	}
}

// TestOnRealFrameworks sanity-checks the tool against this repository when
// the source tree is available (it is under `go test`).
func TestOnRealFrameworks(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "internal", "gap")); err != nil {
		t.Skip("source tree not available")
	}
	c, err := loc.CountDir("gap", filepath.Join(root, "internal", "gap"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Code < 100 {
		t.Fatalf("gap package code lines = %d, implausibly small", c.Code)
	}
}

package nwgraph

import "gapbench/internal/graph"

// CSR adapts the shared CSR substrate to the NWGraph concepts. This is the
// adapter the benchmarks run through; it satisfies all three concepts.
type CSR struct {
	g *graph.Graph
}

// NewCSR wraps a CSR graph.
func NewCSR(g *graph.Graph) *CSR { return &CSR{g: g} }

// NumVertices implements AdjacencyList.
func (c *CSR) NumVertices() int { return int(c.g.NumNodes()) }

// Degree implements AdjacencyList.
func (c *CSR) Degree(u Vertex) int { return int(c.g.OutDegree(u)) }

// Neighbors implements AdjacencyList.
func (c *CSR) Neighbors(u Vertex, yield func(v Vertex) bool) {
	for _, v := range c.g.OutNeighbors(u) {
		if !yield(v) {
			return
		}
	}
}

// InDegree implements BidirectionalAdjacency.
func (c *CSR) InDegree(u Vertex) int { return int(c.g.InDegree(u)) }

// InNeighbors implements BidirectionalAdjacency.
func (c *CSR) InNeighbors(u Vertex, yield func(v Vertex) bool) {
	for _, v := range c.g.InNeighbors(u) {
		if !yield(v) {
			return
		}
	}
}

// WeightedNeighbors implements WeightedAdjacency.
func (c *CSR) WeightedNeighbors(u Vertex, yield func(v Vertex, w int32) bool) {
	neigh := c.g.OutNeighbors(u)
	ws := c.g.OutWeights(u)
	for i, v := range neigh {
		if !yield(v, ws[i]) {
			return
		}
	}
}

// NeighborSlice exposes the raw sorted neighbor slice. Triangle counting
// uses it the way NWGraph's TC uses contiguous ranges; types that cannot
// provide one fall back to materializing via Neighbors.
func (c *CSR) NeighborSlice(u Vertex) []Vertex { return c.g.OutNeighbors(u) }

// InNeighborSlice exposes the raw in-neighbor slice; the PageRank gather
// specializes on this capability (the moral equivalent of the contiguous-
// range specialization a C++ template instantiation performs for free).
func (c *CSR) InNeighborSlice(u Vertex) []Vertex { return c.g.InNeighbors(u) }

// sortedNeighbors returns u's neighbors as a sorted slice for any
// AdjacencyList, using the zero-copy fast path when the type offers one.
// The second return value is the (possibly grown) scratch buffer to pass
// back on the next call; the first return value must not be retained across
// calls that share the buffer.
func sortedNeighbors(g AdjacencyList, u Vertex, buf []Vertex) ([]Vertex, []Vertex) {
	if fast, ok := g.(interface{ NeighborSlice(Vertex) []Vertex }); ok {
		return fast.NeighborSlice(u), buf
	}
	buf = buf[:0]
	g.Neighbors(u, func(v Vertex) bool {
		buf = append(buf, v)
		return true
	})
	return buf, buf
}

// Package nwgraph reproduces the NWGraph library the paper evaluates: a
// generic algorithms library whose kernels are written against minimal
// type concepts rather than a concrete graph structure (§III-C — "its
// algorithms are not written to use any particular graph data structures,
// but rather are written in terms of properties of types"). Here the
// concepts are Go interfaces consumed through type parameters, and the
// benchmark adapter wraps the shared CSR substrate. The genericity is real:
// every kernel in this package also runs against the map-based adjacency in
// the tests, exactly the "use NWGraph algorithms with the data types around
// which they have already structured their applications" pitch.
package nwgraph

// Vertex is a vertex identifier in the concept vocabulary.
type Vertex = int32

// AdjacencyList is the minimal "range of ranges" concept: a vertex count
// plus per-vertex neighbor ranges exposed as internal iterators (the Go
// analogue of C++20 ranges). Iteration stops early when yield returns false.
type AdjacencyList interface {
	NumVertices() int
	Degree(u Vertex) int
	// Neighbors iterates u's out-neighbors in ascending order.
	Neighbors(u Vertex, yield func(v Vertex) bool)
}

// BidirectionalAdjacency adds incoming edges, required by the pull-style
// kernels (PR's gather, BFS's bottom-up step).
type BidirectionalAdjacency interface {
	AdjacencyList
	InDegree(u Vertex) int
	InNeighbors(u Vertex, yield func(v Vertex) bool)
}

// WeightedAdjacency adds tuple edge properties (§III-C's "range-centric w/
// tuple edge properties") — here, the int32 weight SSSP consumes.
type WeightedAdjacency interface {
	AdjacencyList
	WeightedNeighbors(u Vertex, yield func(v Vertex, w int32) bool)
}

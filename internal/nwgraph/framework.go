package nwgraph

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Framework is the NWGraph reproduction.
type Framework struct{}

// New returns the NWGraph framework.
func New() *Framework { return &Framework{} }

// Name implements kernel.Framework.
func (*Framework) Name() string { return "NWGraph" }

// Attributes returns the Table II row.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "header-only library",
		"Internal Graph Data":       "adjacency list as range of ranges",
		"Programming Abstraction":   "range-centric w/ tuple edge properties",
		"Execution Synchronization": "algorithm-specific, level-synchronous",
		"Intended Users":            "practicing C++ programmers",
	}
}

// Algorithms returns the Table III row.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing (simple switch)",
		SSSP: "Delta-stepping",
		CC:   "Afforest",
		PR:   "Gauss-Seidel SpMV",
		BC:   "Brandes (no direction opt)",
		TC:   "Order invariant (cyclic rows)",
	}
}

var (
	_ kernel.Framework = (*Framework)(nil)
	_ kernel.Describer = (*Framework)(nil)
)

// BFS implements kernel.Framework.
func (*Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	return BFS(opt.Exec(), NewCSR(g), src, opt.EffectiveWorkers())
}

// SSSP implements kernel.Framework.
func (*Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	delta := opt.Delta
	if delta <= 0 {
		delta = 16
	}
	return SSSP(opt.Exec(), NewCSR(g), src, delta, opt.EffectiveWorkers())
}

// PR implements kernel.Framework.
func (*Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return PR(opt.Exec(), NewCSR(g), opt.EffectiveWorkers())
}

// CC implements kernel.Framework.
func (*Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	return CC(opt.Exec(), NewCSR(g), g.Directed(), opt.EffectiveWorkers())
}

// BC implements kernel.Framework.
func (*Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return BC(opt.Exec(), NewCSR(g), sources, opt.EffectiveWorkers())
}

// TC implements kernel.Framework.
func (*Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	return TC(opt.Exec(), NewCSR(relabelIfSkewed(g, opt)), opt.EffectiveWorkers())
}

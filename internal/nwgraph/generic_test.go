package nwgraph_test

import (
	"sort"
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/nwgraph"
	"gapbench/internal/par"
	"gapbench/internal/testutil"
	"gapbench/internal/verify"
)

// mapAdjacency is a deliberately non-CSR graph type — the "data types around
// which they have already structured their applications" of §III-C. It
// satisfies the NWGraph concepts with sorted map-backed adjacency and no
// contiguous-slice fast paths, so the generic kernels run through the pure
// iterator interface.
type mapAdjacency struct {
	n   int
	out map[nwgraph.Vertex][]weightedEdge
	in  map[nwgraph.Vertex][]nwgraph.Vertex
}

type weightedEdge struct {
	to nwgraph.Vertex
	w  int32
}

func newMapAdjacency(g *graph.Graph) *mapAdjacency {
	m := &mapAdjacency{
		n:   int(g.NumNodes()),
		out: map[nwgraph.Vertex][]weightedEdge{},
		in:  map[nwgraph.Vertex][]nwgraph.Vertex{},
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		ws := g.OutWeights(u)
		for i, v := range g.OutNeighbors(u) {
			w := int32(1)
			if ws != nil {
				w = ws[i]
			}
			m.out[u] = append(m.out[u], weightedEdge{v, w})
			m.in[v] = append(m.in[v], u)
		}
	}
	for _, edges := range m.out {
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	}
	for _, ins := range m.in {
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	return m
}

func (m *mapAdjacency) NumVertices() int              { return m.n }
func (m *mapAdjacency) Degree(u nwgraph.Vertex) int   { return len(m.out[u]) }
func (m *mapAdjacency) InDegree(u nwgraph.Vertex) int { return len(m.in[u]) }
func (m *mapAdjacency) Neighbors(u nwgraph.Vertex, yield func(nwgraph.Vertex) bool) {
	for _, e := range m.out[u] {
		if !yield(e.to) {
			return
		}
	}
}
func (m *mapAdjacency) InNeighbors(u nwgraph.Vertex, yield func(nwgraph.Vertex) bool) {
	for _, v := range m.in[u] {
		if !yield(v) {
			return
		}
	}
}
func (m *mapAdjacency) WeightedNeighbors(u nwgraph.Vertex, yield func(nwgraph.Vertex, int32) bool) {
	for _, e := range m.out[u] {
		if !yield(e.to, e.w) {
			return
		}
	}
}

// TestGenericKernelsOnMapAdjacency is the genericity claim made executable:
// every NWGraph kernel runs unchanged over a map-backed adjacency and
// produces oracle-correct results.
func TestGenericKernelsOnMapAdjacency(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Kron(8, 13)
	if err != nil {
		t.Fatal(err)
	}
	m := newMapAdjacency(g)
	src := graph.NodeID(0)
	for g.OutDegree(src) == 0 {
		src++
	}

	if err := verify.CheckBFS(g, src, nwgraph.BFS(par.Default(), m, src, 2)); err != nil {
		t.Errorf("BFS: %v", err)
	}
	if err := verify.CheckSSSP(g, src, nwgraph.SSSP(par.Default(), m, src, 16, 2)); err != nil {
		t.Errorf("SSSP: %v", err)
	}
	if err := verify.CheckPR(g, nwgraph.PR(par.Default(), m, 2)); err != nil {
		t.Errorf("PR: %v", err)
	}
	if err := verify.CheckCC(g, nwgraph.CC(par.Default(), m, g.Directed(), 2)); err != nil {
		t.Errorf("CC: %v", err)
	}
	roots := []graph.NodeID{src}
	if err := verify.CheckBC(g, roots, nwgraph.BC(par.Default(), m, roots, 2)); err != nil {
		t.Errorf("BC: %v", err)
	}
	// TC requires the undirected view; Kron is already undirected.
	if err := verify.CheckTC(g, nwgraph.TC(par.Default(), m, 2)); err != nil {
		t.Errorf("TC: %v", err)
	}
}

// TestCSRAndMapAgree cross-validates the two adjacency types against each
// other directly.
func TestCSRAndMapAgree(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Urand(7, 21)
	if err != nil {
		t.Fatal(err)
	}
	csr := nwgraph.NewCSR(g)
	m := newMapAdjacency(g)
	if got, want := nwgraph.TC(par.Default(), m, 2), nwgraph.TC(par.Default(), csr, 2); got != want {
		t.Fatalf("TC disagrees: map %d vs csr %d", got, want)
	}
	dm := nwgraph.SSSP(par.Default(), m, 0, 16, 2)
	dc := nwgraph.SSSP(par.Default(), csr, 0, 16, 2)
	for v := range dm {
		if dm[v] != dc[v] {
			t.Fatalf("SSSP disagrees at %d: %d vs %d", v, dm[v], dc[v])
		}
	}
}

func TestConceptsCompileTimeConformance(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var _ nwgraph.AdjacencyList = (*mapAdjacency)(nil)
	var _ nwgraph.BidirectionalAdjacency = (*mapAdjacency)(nil)
	var _ nwgraph.WeightedAdjacency = (*mapAdjacency)(nil)
	var _ nwgraph.AdjacencyList = (*nwgraph.CSR)(nil)
	var _ nwgraph.BidirectionalAdjacency = (*nwgraph.CSR)(nil)
	var _ nwgraph.WeightedAdjacency = (*nwgraph.CSR)(nil)
	_ = kernel.Options{}
}

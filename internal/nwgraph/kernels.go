package nwgraph

import (
	"math"
	"sync/atomic"

	ft "gapbench/internal/frontier"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// BFS is a straightforward direction-optimizing search with a simple,
// untuned switch criterion (§V-A: "a straightforward, initial implementation
// ... no fine tuning of the switching criteria"). Frontiers are freshly
// allocated vectors each round — the STL-vector reliance whose overhead the
// paper observes "was particularly noticeable for Road". The bottom-up
// membership test opts in to the shared frontier library: the sparse round
// frontier converts to a frontier.Set bitmap (a timed conversion, like the
// std::vector<bool> build it replaces) and Contains answers the probes.
func BFS[G BidirectionalAdjacency](exec *par.Machine, g G, src Vertex, workers int) []Vertex {
	n := g.NumVertices()
	parent := make([]Vertex, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src
	frontier := []Vertex{src}

	for len(frontier) > 0 {
		if exec.Interrupted() {
			return parent // partial; the harness discards cancelled trials
		}
		if len(frontier) > n/20 {
			// Bottom-up: scan all unvisited vertices.
			inFrontier := ft.FromList(int64(n), frontier).ToBitmap(exec, workers)
			var collect nextCollect
			exec.ForBlocked(n, workers, func(lo, hi int) {
				var local []Vertex
				for vi := lo; vi < hi; vi++ {
					v := Vertex(vi)
					//gapvet:ignore atomic-plain-mix -- bottom-up phase: each v writes only parent[v]; barrier-separated from the push phase's CAS
					if parent[v] >= 0 {
						continue
					}
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.InNeighbors(v, func(u Vertex) bool {
						if inFrontier.Contains(u) {
							parent[v] = u
							local = append(local, v)
							return false
						}
						return true
					})
				}
				collect.add(local)
			})
			frontier = collect.take()
		} else {
			cur := frontier
			var collect nextCollect
			exec.ForDynamic(len(cur), 64, workers, func(lo, hi int) {
				var local []Vertex
				for i := lo; i < hi; i++ {
					u := cur[i]
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.Neighbors(u, func(v Vertex) bool {
						if atomic.LoadInt32(&parent[v]) < 0 &&
							atomic.CompareAndSwapInt32(&parent[v], -1, u) {
							local = append(local, v)
						}
						return true
					})
				}
				collect.add(local)
			})
			frontier = collect.take()
		}
	}
	return parent
}

// SSSP is generic delta-stepping (no bucket fusion) with per-worker bins,
// managed the way NWGraph manages parallelism through TBB primitives.
func SSSP[G WeightedAdjacency](exec *par.Machine, g G, src Vertex, delta kernel.Dist, workers int) []kernel.Dist {
	n := g.NumVertices()
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	if workers < 1 {
		workers = 1
	}
	dist[src] = 0
	bins := make([][][]Vertex, workers)
	put := func(w, b int, v Vertex) {
		for b >= len(bins[w]) {
			bins[w] = append(bins[w], nil)
		}
		bins[w][b] = append(bins[w][b], v)
	}

	frontier := []Vertex{src}
	bucket := 0
	for {
		if exec.Interrupted() {
			return dist
		}
		lo := kernel.Dist(bucket) * delta
		hi := lo + delta
		exec.ForWorker(len(frontier), workers, func(w, i0, i1 int) {
			for i := i0; i < i1; i++ {
				u := frontier[i]
				du := atomic.LoadInt32(&dist[u])
				if du < lo || du >= hi {
					continue
				}
				//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
				g.WeightedNeighbors(u, func(v Vertex, wt int32) bool {
					nd := du + wt
					old := atomic.LoadInt32(&dist[v])
					for nd < old {
						if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
							put(w, int(nd/delta), v)
							break
						}
						old = atomic.LoadInt32(&dist[v])
					}
					return true
				})
			}
		})
		next := -1
		for w := range bins {
			for b := bucket; b < len(bins[w]); b++ {
				if len(bins[w][b]) > 0 && (next < 0 || b < next) {
					next = b
					break
				}
			}
		}
		if next < 0 {
			break
		}
		frontier = frontier[:0]
		for w := range bins {
			if next < len(bins[w]) {
				frontier = append(frontier, bins[w][next]...)
				bins[w][next] = nil
			}
		}
		bucket = next
	}
	return dist
}

// PR is NWGraph's Gauss-Seidel PageRank (§V-D: "NWGraph used the
// Gauss-Seidel algorithm and saw performance in line with ... the other
// frameworks using that algorithm"): in-place chaotic relaxation, expressed
// with a parallel execution policy over the vertex range.
func PR[G BidirectionalAdjacency](exec *par.Machine, g G, workers int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]uint64, n) // float64 bits of rank/out-degree
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		ranks[v] = 1 / float64(n)
		if d := g.Degree(Vertex(v)); d > 0 {
			invDeg[v] = 1 / float64(d)
			contrib[v] = math.Float64bits(ranks[v] * invDeg[v])
		}
	}

	for it := 0; it < kernel.PRMaxIters; it++ {
		if exec.Interrupted() {
			return ranks
		}
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if invDeg[u] == 0 {
					d += ranks[u]
				}
			}
			return d
		})
		danglingShare := kernel.PRDamping * dangling / float64(n)
		// Specialize on contiguous in-neighbor ranges when the graph type
		// offers them, like a template instantiation would; otherwise gather
		// through the generic internal iterator.
		fast, hasFast := any(g).(interface{ InNeighborSlice(Vertex) []Vertex })
		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for vi := lo; vi < hi; vi++ {
				v := Vertex(vi)
				sum := 0.0
				if hasFast {
					for _, u := range fast.InNeighborSlice(v) {
						sum += math.Float64frombits(atomic.LoadUint64(&contrib[u]))
					}
				} else {
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.InNeighbors(v, func(u Vertex) bool {
						sum += math.Float64frombits(atomic.LoadUint64(&contrib[u]))
						return true
					})
				}
				next := base + danglingShare + kernel.PRDamping*sum
				d += math.Abs(next - ranks[v])
				ranks[v] = next
				if invDeg[v] != 0 {
					atomic.StoreUint64(&contrib[v], math.Float64bits(next*invDeg[v]))
				}
			}
			return d
		})
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

// CC is Afforest over the concepts (Table III: NWGraph uses Afforest), with
// parallel execution policies standing in for the C++17 parallel algorithms
// NWGraph leans on.
func CC[G BidirectionalAdjacency](exec *par.Machine, g G, directed bool, workers int) []Vertex {
	n := g.NumVertices()
	comp := make([]Vertex, n)
	for i := range comp {
		comp[i] = Vertex(i)
	}
	if n == 0 {
		return comp
	}
	const rounds = 2
	for r := 0; r < rounds; r++ {
		exec.ForDynamic(n, 256, workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				k := 0
				//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
				g.Neighbors(Vertex(u), func(v Vertex) bool {
					if k == r {
						unionCAS(Vertex(u), v, comp)
						return false
					}
					k++
					return true
				})
			}
		})
	}
	compressCAS(exec, comp, workers)
	giant := frequentLabel(comp)
	exec.ForDynamic(n, 256, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if atomic.LoadInt32(&comp[u]) == giant {
				continue
			}
			k := 0
			//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
			g.Neighbors(Vertex(u), func(v Vertex) bool {
				if k >= rounds {
					unionCAS(Vertex(u), v, comp)
				}
				k++
				return true
			})
			if directed {
				//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
				g.InNeighbors(Vertex(u), func(v Vertex) bool {
					unionCAS(Vertex(u), v, comp)
					return true
				})
			}
		}
	})
	compressCAS(exec, comp, workers)
	return comp
}

// BC is Brandes over the concepts without a direction-optimized forward
// search (§V-E: "The BC kernel did not use direction optimized breadth-first
// search"), followed by level-ordered sigma and dependency passes.
func BC[G BidirectionalAdjacency](exec *par.Machine, g G, sources []Vertex, workers int) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)

	for _, src := range sources {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				//gapvet:ignore atomic-plain-mix -- reset phase: barrier-separated from the forward phase's CAS on depth
				depth[i] = -1
				sigma[i] = 0
				delta[i] = 0
			}
		})
		depth[src] = 0
		sigma[src] = 1

		levels := [][]Vertex{{src}}
		current := levels[0]
		for len(current) > 0 {
			if exec.Interrupted() {
				return scores
			}
			d := int32(len(levels))
			var collect nextCollect
			exec.ForDynamic(len(current), 64, workers, func(lo, hi int) {
				var local []Vertex
				for i := lo; i < hi; i++ {
					u := current[i]
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.Neighbors(u, func(v Vertex) bool {
						if atomic.LoadInt32(&depth[v]) < 0 &&
							atomic.CompareAndSwapInt32(&depth[v], -1, d) {
							local = append(local, v)
						}
						return true
					})
				}
				collect.add(local)
			})
			next := collect.take()
			if len(next) == 0 {
				break
			}
			levels = append(levels, next)
			current = next
		}

		for l := 1; l < len(levels); l++ {
			level := levels[l]
			exec.ForDynamic(len(level), 64, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := level[i]
					var s float64
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.InNeighbors(v, func(u Vertex) bool {
						if depth[u] == depth[v]-1 {
							s += sigma[u]
						}
						return true
					})
					sigma[v] = s
				}
			})
		}
		for l := len(levels) - 2; l >= 0; l-- {
			level := levels[l]
			exec.ForDynamic(len(level), 64, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var d float64
					//gapvet:ignore escape-in-kernel -- internal-iterator callback: the per-vertex lambda is the abstraction cost the paper observes for NWGraph; hoisting it would misstate the framework
					g.Neighbors(u, func(v Vertex) bool {
						if depth[v] == depth[u]+1 {
							d += sigma[u] / sigma[v] * (1 + delta[v])
						}
						return true
					})
					delta[u] = d
					if u != src {
						scores[u] += d
					}
				}
			})
		}
	}

	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		for i := range scores {
			scores[i] /= maxScore
		}
	}
	return scores
}

// TC counts triangles with a cyclic distribution of rows across workers —
// §V-F: "NWGraph's cyclic distribution of rows across threads led to near
// optimal load balancing" on skew-degree graphs.
func TC[G AdjacencyList](exec *par.Machine, g G, workers int) int64 {
	n := g.NumVertices()
	if workers < 1 {
		workers = 1
	}
	partial := make([]int64, workers)
	bufsA := make([][]Vertex, workers)
	bufsB := make([][]Vertex, workers)
	exec.ForCyclic(n, workers, func(w, a int) {
		var na []Vertex
		na, bufsA[w] = sortedNeighbors(g, Vertex(a), bufsA[w])
		var count int64
		for _, b := range na {
			if b > Vertex(a) {
				break
			}
			var nb []Vertex
			nb, bufsB[w] = sortedNeighbors(g, b, bufsB[w])
			it := 0
			for _, x := range nb {
				if x > b {
					break
				}
				for na[it] < x {
					it++
				}
				if na[it] == x {
					count++
				}
			}
		}
		partial[w] += count
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// nextCollect merges per-chunk frontier fragments.
type nextCollect struct {
	mu  spin
	out []Vertex
}

func (c *nextCollect) add(local []Vertex) {
	if len(local) == 0 {
		return
	}
	c.mu.Lock()
	c.out = append(c.out, local...)
	c.mu.Unlock()
}
func (c *nextCollect) take() []Vertex { return c.out }

type spin struct{ v atomic.Int32 }

func (m *spin) Lock() {
	for !m.v.CompareAndSwap(0, 1) {
	}
}
func (m *spin) Unlock() { m.v.Store(0) }

// unionCAS hooks the higher root onto the lower (shared Afforest link). The
// two loads and the equality test are the per-edge fast path — once
// components converge nearly every call sees equal labels — and fit the
// inline budget; the CAS loop lives out of line in unionCASSlow, which
// re-loads under its own loop anyway.
func unionCAS(u, v Vertex, comp []Vertex) {
	if atomic.LoadInt32(&comp[u]) != atomic.LoadInt32(&comp[v]) {
		unionCASSlow(u, v, comp)
	}
}

// unionCASSlow repeatedly hooks the higher root onto the lower one with CAS.
// Kept out of line so unionCAS stays under the inline budget.
//
//go:noinline
func unionCASSlow(u, v Vertex, comp []Vertex) {
	p1 := atomic.LoadInt32(&comp[u])
	p2 := atomic.LoadInt32(&comp[v])
	for p1 != p2 {
		high, low := p1, p2
		if high < low {
			high, low = low, high
		}
		pHigh := atomic.LoadInt32(&comp[high])
		if pHigh == low {
			break
		}
		if pHigh == high && atomic.CompareAndSwapInt32(&comp[high], high, low) {
			break
		}
		p1 = atomic.LoadInt32(&comp[atomic.LoadInt32(&comp[high])])
		p2 = atomic.LoadInt32(&comp[low])
	}
}

func compressCAS(exec *par.Machine, comp []Vertex, workers int) {
	exec.ForBlocked(len(comp), workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			c := atomic.LoadInt32(&comp[u])
			for {
				cc := atomic.LoadInt32(&comp[c])
				if c == cc {
					break
				}
				c = cc
			}
			atomic.StoreInt32(&comp[u], c)
		}
	})
}

func frequentLabel(comp []Vertex) Vertex {
	const samples = 1024
	counts := make(map[Vertex]int, samples)
	n := uint64(len(comp))
	x := uint64(0x2545f4914f6cdd1d)
	for i := 0; i < samples; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		root := comp[(x>>17)%n]
		for root != comp[root] {
			root = comp[root]
		}
		counts[root]++
	}
	best, bestCount := Vertex(0), -1
	for c, k := range counts {
		if k > bestCount {
			best, bestCount = c, k
		}
	}
	return best
}

// relabelIfSkewed applies degree relabeling for TC when the heuristic fires,
// or uses the harness's untimed view in Optimized mode.
func relabelIfSkewed(g *graph.Graph, opt kernel.Options) *graph.Graph {
	u := opt.Undirected(g)
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		return opt.RelabeledView
	}
	if graph.SkewedDegrees(u) {
		ru, _ := graph.DegreeRelabel(u)
		return ru
	}
	return u
}

package nwgraph_test

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/nwgraph"
	"gapbench/internal/testutil"
)

func TestConformance(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.RunConformance(t, nwgraph.New())
}

func TestDescribe(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.Describe(t, nwgraph.New())
}

func TestAcrossWorkerCounts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Urand(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RunKernelAcrossWorkers(t, nwgraph.New(), g)
}

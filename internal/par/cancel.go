package par

// cancel.go is the cooperative-cancellation half of the fault-isolation
// story (DESIGN.md §9). Multi-framework benchmark studies all hit the same
// operational reality: some (framework, kernel, graph) cells never
// terminate — Pollard & Norris report exactly this, and "Revisiting Graph
// Analytics Benchmark" makes per-cell timeouts a first-class evaluation
// rule. A deadline is only useful if something actually polls it, so the
// machine carries a region-scoped CancelToken that every schedule consults
// at its natural work boundaries: per slot for the blocked schedules, per
// chunk for the dynamic ones, and every cancelStride indices inside the
// per-index loops so even a single enormous block notices the deadline.
//
// Cancellation is strictly cooperative and strictly advisory: a cancelled
// region skips the *remaining* work and still joins its barrier, so the
// submitting kernel returns quickly with an incomplete (garbage) result that
// the harness then discards. Nothing is killed; if a kernel's own loop body
// never returns, the token cannot help and the runner escalates to machine
// abandonment (internal/core).

import (
	"sync/atomic"
	"time"
)

// cancelStride is how many per-index iterations For/ForCyclic run between
// deadline polls: a power of two so the poll guard is a single mask. 512
// index-level iterations amortize the time.Now() call in Cancelled to noise
// while still bounding the reaction latency of a hot loop.
const cancelStride = 512

// CancelToken is a one-shot, region-scoped cancellation signal. It fires
// either when a caller invokes Cancel, when its optional deadline passes
// (observed lazily at the next poll), or when any chained parent token fires
// (see Chain). All methods are nil-safe: a nil token never cancels, so hot
// paths guard with a plain pointer test and unconfigured machines pay
// nothing.
type CancelToken struct {
	fired    atomic.Bool
	deadline time.Time // zero means caller-driven only
	// parents are upstream tokens this one derives from: a fired parent
	// fires this token at the next poll. Set at construction (Chain) and
	// never mutated afterwards, so Cancelled can read it without
	// synchronization.
	parents []*CancelToken
	polls   atomic.Int64
}

// NewCancelToken returns a caller-driven token (fires only via Cancel).
func NewCancelToken() *CancelToken { return &CancelToken{} }

// NewDeadlineToken returns a token that fires once d has elapsed from now
// (or earlier, via Cancel).
func NewDeadlineToken(d time.Duration) *CancelToken {
	return &CancelToken{deadline: time.Now().Add(d)}
}

// Chain returns a token that fires when any of the given parents fires (or
// when Cancel is called on the chained token itself). Nil parents are
// skipped. This is how a serving layer composes independent cancellation
// causes — a per-query deadline budget and a client-disconnect signal — into
// the single token a machine polls:
//
//	tok := par.Chain(connToken, par.NewDeadlineToken(budget))
//	machine.SetCancel(tok)
//
// Once a parent trips the chain the child latches fired, so later polls stay
// cheap and the child reports cancelled even if the parent is reset-free (all
// tokens are one-shot). Cancelling a chained token does not propagate upward:
// the parents stay live for their other children.
func Chain(parents ...*CancelToken) *CancelToken {
	t := &CancelToken{}
	for _, p := range parents {
		if p != nil {
			t.parents = append(t.parents, p)
		}
	}
	return t
}

// Cancel fires the token. Idempotent and safe from any goroutine.
func (t *CancelToken) Cancel() {
	if t != nil {
		t.fired.Store(true)
	}
}

// Cancelled reports whether the token has fired, firing it first if the
// deadline has passed. Nil-safe; the fast path is one atomic load.
func (t *CancelToken) Cancelled() bool {
	if t == nil {
		return false
	}
	t.polls.Add(1)
	if t.fired.Load() {
		return true
	}
	if !t.deadline.IsZero() && !time.Now().Before(t.deadline) {
		t.fired.Store(true)
		return true
	}
	for _, p := range t.parents {
		if p.Cancelled() {
			t.fired.Store(true)
			return true
		}
	}
	return false
}

// Polls reports how many times Cancelled was consulted — the observability
// hook the cancellation tests use to prove each schedule actually polls.
func (t *CancelToken) Polls() int64 {
	if t == nil {
		return 0
	}
	return t.polls.Load()
}

// SetCancel installs (or, with nil, removes) the machine's region-scoped
// cancel token. Regions submitted after the call observe the token; regions
// already in flight observe it at their next slot or chunk boundary, because
// dispatch re-reads the pointer when each region is built. The harness
// installs a fresh token per trial and clears it afterwards.
func (m *Machine) SetCancel(t *CancelToken) {
	m.cancel.Store(t)
}

// CancelToken returns the currently installed token (nil when none).
// Nil-safe: a nil machine resolves to the process default, like every
// schedule does.
func (m *Machine) CancelToken() *CancelToken {
	return m.orDefault().cancel.Load()
}

// Interrupted reports whether the machine's installed cancel token has
// fired — the one-line poll framework round loops use:
//
//	for !frontier.empty() {
//		if exec.Interrupted() {
//			return dist // partial; the harness discards cancelled trials
//		}
//		...
//	}
//
// Nil-safe on both the machine and the token; without a token it is one
// atomic pointer load per round.
func (m *Machine) Interrupted() bool {
	return m.orDefault().cancel.Load().Cancelled()
}

package par_test

import (
	"sync/atomic"
	"testing"
	"time"

	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

// TestCancelTokenBasics covers the token state machine: nil safety,
// caller-driven firing, idempotence, and lazy deadline observation.
func TestCancelTokenBasics(t *testing.T) {
	var nilTok *par.CancelToken
	if nilTok.Cancelled() {
		t.Error("nil token reported cancelled")
	}
	nilTok.Cancel() // must not panic
	if nilTok.Polls() != 0 {
		t.Error("nil token reported polls")
	}

	tok := par.NewCancelToken()
	if tok.Cancelled() {
		t.Error("fresh token reported cancelled")
	}
	tok.Cancel()
	tok.Cancel() // idempotent
	if !tok.Cancelled() {
		t.Error("fired token reported not cancelled")
	}
	if tok.Polls() < 2 {
		t.Errorf("Polls = %d, want >= 2", tok.Polls())
	}

	// A deadline token fires lazily: the deadline passing is observed at
	// the next poll, not by a background timer.
	dl := par.NewDeadlineToken(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if !dl.Cancelled() {
		t.Error("expired deadline token reported not cancelled")
	}
	far := par.NewDeadlineToken(time.Hour)
	if far.Cancelled() {
		t.Error("future deadline token reported cancelled")
	}
}

// TestEverySchedulePollsToken proves each of the five schedules (plus the
// reduces) consults an installed token: with a pre-fired token, the body
// must never run, and the token must record polls.
func TestEverySchedulePollsToken(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const n = 10_000
	for _, workers := range []int{1, 4} {
		m := par.NewMachine(workers)
		schedules := map[string]func(tok *par.CancelToken) int64{
			"For": func(tok *par.CancelToken) int64 {
				var ran atomic.Int64
				m.For(n, workers, func(i int) { ran.Add(1) })
				return ran.Load()
			},
			"ForBlocked": func(tok *par.CancelToken) int64 {
				var ran atomic.Int64
				m.ForBlocked(n, workers, func(lo, hi int) { ran.Add(int64(hi - lo)) })
				return ran.Load()
			},
			"ForDynamic": func(tok *par.CancelToken) int64 {
				var ran atomic.Int64
				m.ForDynamic(n, 64, workers, func(lo, hi int) { ran.Add(int64(hi - lo)) })
				return ran.Load()
			},
			"ForCyclic": func(tok *par.CancelToken) int64 {
				var ran atomic.Int64
				m.ForCyclic(n, workers, func(w, i int) { ran.Add(1) })
				return ran.Load()
			},
			"ForWorker": func(tok *par.CancelToken) int64 {
				var ran atomic.Int64
				m.ForWorker(n, workers, func(w, lo, hi int) { ran.Add(int64(hi - lo)) })
				return ran.Load()
			},
			"ReduceInt64": func(tok *par.CancelToken) int64 {
				return m.ReduceInt64(n, workers, func(lo, hi int) int64 { return int64(hi - lo) })
			},
			"ReduceFloat64": func(tok *par.CancelToken) int64 {
				return int64(m.ReduceFloat64(n, workers, func(lo, hi int) float64 { return float64(hi - lo) }))
			},
			"ReduceDynamicInt64": func(tok *par.CancelToken) int64 {
				return m.ReduceDynamicInt64(n, 64, workers, func(lo, hi int) int64 { return int64(hi - lo) })
			},
		}
		for name, run := range schedules {
			// Uncancelled: all work happens.
			tok := par.NewCancelToken()
			m.SetCancel(tok)
			if got := run(tok); got != n {
				t.Errorf("workers=%d %s uncancelled ran %d of %d", workers, name, got, n)
			}
			// Pre-fired: no work happens, and the schedule polled.
			tok = par.NewCancelToken()
			tok.Cancel()
			before := tok.Polls()
			m.SetCancel(tok)
			if got := run(tok); got != 0 {
				t.Errorf("workers=%d %s ran %d iterations under a fired token", workers, name, got)
			}
			if tok.Polls() == before {
				t.Errorf("workers=%d %s never polled the token", workers, name)
			}
			m.SetCancel(nil)
		}
		m.Close()
	}
}

// TestMidRegionCancellation fires the token from inside the loop body and
// checks the region stops early yet still joins its barrier (the call
// returns). The per-index schedules poll every cancelStride iterations, so
// at most a stride's worth of extra work may run per slot.
func TestMidRegionCancellation(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const n = 1 << 20
	for _, workers := range []int{1, 4} {
		m := par.NewMachine(workers)
		tok := par.NewCancelToken()
		m.SetCancel(tok)
		var ran atomic.Int64
		m.For(n, workers, func(i int) {
			if ran.Add(1) == 100 {
				tok.Cancel()
			}
		})
		if got := ran.Load(); got >= n {
			t.Errorf("workers=%d: mid-region cancel did not stop For early (ran %d of %d)", workers, got, n)
		}
		m.SetCancel(nil)

		// ForDynamic reacts at the next chunk boundary — which only exists
		// on the parallel path: the serial fallback passes the whole range
		// as one chunk, so a mid-body cancel cannot stop it.
		if workers == 1 {
			m.SetCancel(nil)
			m.Close()
			continue
		}
		tok = par.NewCancelToken()
		m.SetCancel(tok)
		ran.Store(0)
		m.ForDynamic(n, 64, workers, func(lo, hi int) {
			if ran.Add(int64(hi-lo)) >= 64 {
				tok.Cancel()
			}
		})
		if got := ran.Load(); got >= n {
			t.Errorf("workers=%d: mid-region cancel did not stop ForDynamic early (ran %d of %d)", workers, got, n)
		}
		m.SetCancel(nil)
		m.Close()
	}
}

// TestDeadlineTokenStopsLongRegion installs a short deadline and checks a
// long region drains well before it would have finished naturally.
func TestDeadlineTokenStopsLongRegion(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(2)
	defer m.Close()
	tok := par.NewDeadlineToken(5 * time.Millisecond)
	m.SetCancel(tok)
	defer m.SetCancel(nil)
	var ran atomic.Int64
	start := time.Now()
	// Each index sleeps, so completing all of them would take >> 10s; the
	// deadline must cut the region off at a stride boundary instead.
	m.ForDynamic(1<<20, 8, 2, func(lo, hi int) {
		ran.Add(int64(hi - lo))
		time.Sleep(50 * time.Microsecond)
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not stop the region: took %v", elapsed)
	}
	if got := ran.Load(); got >= 1<<20 {
		t.Errorf("region ran to completion (%d iterations) despite deadline", got)
	}
	if !tok.Cancelled() {
		t.Error("deadline token never fired")
	}
}

// TestLateInstallObservedByNextRegion: SetCancel after a region completes
// affects the next region only — the machine re-reads the pointer per
// dispatch.
func TestLateInstallObservedByNextRegion(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(2)
	defer m.Close()
	var ran atomic.Int64
	m.For(100, 2, func(i int) { ran.Add(1) })
	if ran.Load() != 100 {
		t.Fatalf("pre-install region ran %d of 100", ran.Load())
	}
	tok := par.NewCancelToken()
	tok.Cancel()
	m.SetCancel(tok)
	ran.Store(0)
	m.For(100, 2, func(i int) { ran.Add(1) })
	if ran.Load() != 0 {
		t.Errorf("post-install region ran %d iterations under fired token", ran.Load())
	}
	m.SetCancel(nil)
	ran.Store(0)
	m.For(100, 2, func(i int) { ran.Add(1) })
	if ran.Load() != 100 {
		t.Errorf("cleared token still suppressed work: ran %d of 100", ran.Load())
	}
}

// TestChainFiresFromAnyParent: a chained token trips when any parent fires —
// the client-disconnect-plus-deadline composition the serving layer needs.
func TestChainFiresFromAnyParent(t *testing.T) {
	disconnect := par.NewCancelToken()
	deadline := par.NewDeadlineToken(time.Hour)
	tok := par.Chain(disconnect, deadline)
	if tok.Cancelled() {
		t.Fatal("fresh chain reported cancelled")
	}
	disconnect.Cancel()
	if !tok.Cancelled() {
		t.Fatal("chain did not observe fired parent")
	}
	// Latched: the chain stays fired even without re-consulting parents.
	if !tok.Cancelled() {
		t.Fatal("chain did not latch")
	}

	// The other composition order: the deadline leg fires.
	lateDisconnect := par.NewCancelToken()
	tok2 := par.Chain(lateDisconnect, par.NewDeadlineToken(time.Nanosecond))
	time.Sleep(time.Millisecond)
	if !tok2.Cancelled() {
		t.Fatal("chain did not observe expired deadline parent")
	}
	if lateDisconnect.Cancelled() {
		t.Error("child cancellation propagated up to a live parent")
	}
}

// TestChainSkipsNilParentsAndSelfCancels: nil parents are legal (a query may
// have no disconnect signal), and Cancel on the chain itself works without
// touching the parents.
func TestChainSkipsNilParentsAndSelfCancels(t *testing.T) {
	parent := par.NewCancelToken()
	tok := par.Chain(nil, parent, nil)
	if tok.Cancelled() {
		t.Fatal("fresh chain with nil parents reported cancelled")
	}
	tok.Cancel()
	if !tok.Cancelled() {
		t.Fatal("self-cancelled chain reported not cancelled")
	}
	if parent.Cancelled() {
		t.Error("chain Cancel propagated up to the parent")
	}
	if empty := par.Chain(); empty.Cancelled() {
		t.Error("empty chain reported cancelled")
	}
}

// TestChainedTokenDrainsMachineRegion: the machine polls the chained token
// like any other, so firing a *parent* (a client disconnect) drains a region
// scheduled under the chain — the composability gap par.Chain closes.
func TestChainedTokenDrainsMachineRegion(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(2)
	defer m.Close()
	disconnect := par.NewCancelToken()
	tok := par.Chain(disconnect, par.NewDeadlineToken(time.Hour))
	m.SetCancel(tok)
	disconnect.Cancel()
	var ran atomic.Int64
	m.For(10_000, 2, func(i int) { ran.Add(1) })
	// Regions poll at slot boundaries and every cancelStride indices; with
	// the parent pre-fired, at most a stride's worth of work can slip through.
	if got := ran.Load(); got >= 10_000 {
		t.Errorf("region under disconnected chain ran all %d iterations", got)
	}
	if !m.Interrupted() {
		t.Error("machine did not report interruption through the chain")
	}
}

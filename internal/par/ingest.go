package par

// ingest.go holds the counting-sort ingest primitives: a sharded histogram,
// a blocked parallel prefix sum, and a stable parallel scatter. Together they
// form the pipeline the GAP reference builder uses to construct CSR — count
// per-key occurrences, exclusive-scan the counts into offsets, then place
// every item at its final position — with no comparison sort over the full
// item list and no atomics on the placement path.
//
// The design follows the classic stable parallel counting sort. Each worker
// owns a private count shard over its statically assigned item range; the
// shards are merged by key range into the exclusive scan, and in the same
// pass each shard cell is rewritten into that worker's *starting offset* for
// the key: offset[w][k] = index[k] + sum over w' < w of count[w'][k]. The
// scatter pass then re-walks the identical item partition, and each worker
// bumps only its own offset cells — per-worker disjoint positions, no
// synchronization, and stability for free (workers are ordered by item
// range, items within a worker are walked in order).
//
// All three primitives are reusable building blocks: the graph builder, the
// CSR symmetrizer, the GraphBLAS transpose and the degree-relabeling
// counting sort (internal/graph, internal/grb) are the first consumers.

import "math"

// histogramCellBudget bounds the total number of shard cells a histogram may
// allocate, as a multiple of the item count: the sharded layout costs
// active x bins int64 cells, so for wide key spaces (bins close to or above
// the item count) the parallelism is capped rather than letting the scratch
// memory dwarf the data being sorted. 4x the item count keeps full
// parallelism for every CSR-shaped workload (bins = n, items = m >= 4n on
// the dense GAP graphs) while degrading toward a single shard when keys
// outnumber items.
const histogramCellBudget = 4

// Histogram is an in-flight sharded counting-sort: per-worker count shards
// over a fixed item partition, finalized by Index into per-worker placement
// offsets consumed by Scatter. Build one with Machine.ShardedHistogram (or
// the package-level shim); the zero value is not usable.
type Histogram struct {
	m      *Machine
	items  int
	bins   int
	active int // slot count used for both passes; fixed at construction
	key    func(i int) int
	// shards[w][k] holds worker w's count for key k after the counting pass,
	// and worker w's next placement offset for key k after Index.
	shards  [][]int64
	index   []int64
	scatter bool // Scatter already ran (offsets are consumed)
}

// ShardedHistogram counts key(i) occurrences for every i in [0, items) into
// per-worker shards, one private []int64 of length bins per participating
// slot. key must return a value in [0, bins) and must be pure: it is invoked
// again, over the identical item partition, by Scatter. workers follows the
// usual convention (< 1 means the machine's size); the effective parallelism
// is additionally capped so shard scratch stays within a small multiple of
// the item count (see histogramCellBudget).
func (m *Machine) ShardedHistogram(items, bins, workers int, key func(i int) int) *Histogram {
	m = m.orDefault()
	active := m.clamp(workers, items)
	if bins > 0 {
		if budget := (histogramCellBudget*items + 4096) / bins; active > budget {
			active = budget
		}
	}
	if active < 1 {
		active = 1
	}
	h := &Histogram{m: m, items: items, bins: bins, active: active, key: key}
	h.shards = make([][]int64, active)
	if items == 0 {
		return h
	}
	m.ForWorker(items, active, func(w, lo, hi int) {
		// Per-worker shard allocation inside the region parallelizes the
		// page zeroing and lands the shard on the worker's own pages.
		s := make([]int64, bins)
		for i := lo; i < hi; i++ {
			s[key(i)]++
		}
		h.shards[w] = s
	})
	return h
}

// Index finalizes the histogram: it merges the shards by key range, returns
// the exclusive prefix sum over the merged counts (length bins+1, so the
// result is directly a CSR index array: index[k] is the first position of
// key k, index[bins] the total item count), and rewrites each shard cell
// into the owning worker's starting placement offset for that key. Index is
// idempotent; the first call does the work.
func (h *Histogram) Index() []int64 {
	if h.index != nil {
		return h.index
	}
	if h.items == 0 || h.active == 1 {
		// Single shard (or nothing): the scan is serial and the shard's
		// offsets are exactly the exclusive scan.
		index := make([]int64, h.bins+1)
		var run int64
		if h.items > 0 {
			s := h.shards[0]
			for k := 0; k < h.bins; k++ {
				c := s[k]
				index[k] = run
				s[k] = run
				run += c
			}
		}
		index[h.bins] = run
		h.index = index
		return index
	}
	// Merge shards by key range into per-key totals...
	counts := make([]int64, h.bins)
	h.m.ForBlocked(h.bins, 0, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			var c int64
			for _, s := range h.shards {
				c += s[k]
			}
			counts[k] = c
		}
	})
	// ...scan them...
	index := h.m.PrefixSum(counts, 0)
	// ...and turn each shard cell into worker w's starting offset for key k:
	// index[k] plus everything earlier workers will place under k.
	h.m.ForBlocked(h.bins, 0, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			run := index[k]
			for _, s := range h.shards {
				c := s[k]
				s[k] = run
				run += c
			}
		}
	})
	h.index = index
	return index
}

// Scatter runs the stable placement pass: every item i in [0, items) is
// re-walked under the same per-worker partition as the counting pass, and
// place(i, pos) is invoked with the item's final position in counting-sorted
// order — items are grouped by key, keys ascending, and items sharing a key
// keep their original relative order (stability). place runs concurrently on
// the machine's workers; distinct calls always receive distinct pos values,
// so writing result[pos] needs no synchronization. Scatter consumes the
// per-worker offsets and may run only once per histogram.
func (h *Histogram) Scatter(place func(i int, pos int64)) {
	h.Index()
	if h.scatter {
		panic("par: Histogram.Scatter called twice (offsets are consumed by the first pass)")
	}
	h.scatter = true
	if h.items == 0 {
		return
	}
	h.m.ForWorker(h.items, h.active, func(w, lo, hi int) {
		off := h.shards[w]
		for i := lo; i < hi; i++ {
			k := h.key(i)
			pos := off[k]
			off[k] = pos + 1
			place(i, pos)
		}
	})
}

// prefixSumSerialMin is the length below which PrefixSum runs serially: the
// two-pass parallel scan reads the input twice, so it needs enough elements
// to amortize two region launches.
const prefixSumSerialMin = 1 << 12

// PrefixSum returns the exclusive prefix sum of counts as a fresh slice of
// length len(counts)+1: out[0] = 0, out[i+1] = out[i] + counts[i]. The
// result has exactly the CSR index-array shape (out[len(counts)] is the
// total). Long inputs use the blocked two-pass parallel scan: per-block
// sums, a serial scan over the block sums, then per-block exclusive scans
// seeded by the block offsets.
func (m *Machine) PrefixSum(counts []int64, workers int) []int64 {
	n := len(counts)
	out := make([]int64, n+1)
	m = m.orDefault()
	active := m.clamp(workers, n)
	if n < prefixSumSerialMin || active == 1 {
		var run int64
		for i, c := range counts {
			out[i] = run
			run += c
		}
		out[n] = run
		return out
	}
	sums := make([]int64, active)
	m.ForWorker(n, active, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[w] = s
	})
	var run int64
	for w, s := range sums {
		sums[w] = run
		run += s
	}
	m.ForWorker(n, active, func(w, lo, hi int) {
		r := sums[w]
		for i := lo; i < hi; i++ {
			out[i] = r
			r += counts[i]
		}
	})
	out[n] = run
	return out
}

// ReduceMaxInt64 computes the maximum of fn(lo, hi) over statically
// partitioned ranges, one partial per slot, combined serially after the
// barrier. When n <= 0 it returns math.MinInt64 (the max identity), so
// callers folding, say, "largest endpoint in an edge list" can distinguish
// the empty input.
func (m *Machine) ReduceMaxInt64(n, workers int, fn func(lo, hi int) int64) int64 {
	if n <= 0 {
		return math.MinInt64
	}
	m = m.orDefault()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		return fn(0, n)
	}
	partial := make([]int64, active)
	m.dispatch(active, func(slot int) {
		partial[slot] = fn(slot*n/active, (slot+1)*n/active)
	})
	max := partial[0]
	for _, p := range partial[1:] {
		if p > max {
			max = p
		}
	}
	return max
}

// ShardedHistogram builds a sharded counting-sort histogram on the
// process-default machine. See Machine.ShardedHistogram.
func ShardedHistogram(items, bins, workers int, key func(i int) int) *Histogram {
	return Default().ShardedHistogram(items, bins, workers, key)
}

// PrefixSum computes an exclusive prefix sum (CSR index shape) on the
// process-default machine. See Machine.PrefixSum.
func PrefixSum(counts []int64, workers int) []int64 {
	return Default().PrefixSum(counts, workers)
}

// ReduceMaxInt64 computes the maximum of fn over statically partitioned
// ranges on the process-default machine. See Machine.ReduceMaxInt64.
func ReduceMaxInt64(n, workers int, fn func(lo, hi int) int64) int64 {
	return Default().ReduceMaxInt64(n, workers, fn)
}

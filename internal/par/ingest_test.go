package par_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

// serialCountingSort is the oracle: positions of items in a stable
// counting-sorted order, computed the obvious single-threaded way.
func serialCountingSort(keys []int, bins int) (index []int64, pos []int64) {
	index = make([]int64, bins+1)
	for _, k := range keys {
		index[k+1]++
	}
	for k := 0; k < bins; k++ {
		index[k+1] += index[k]
	}
	next := make([]int64, bins)
	copy(next, index[:bins])
	pos = make([]int64, len(keys))
	for i, k := range keys {
		pos[i] = next[k]
		next[k]++
	}
	return index, pos
}

func TestShardedHistogramMatchesSerialCountingSort(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	rng := rand.New(rand.NewSource(7))
	for _, machineSize := range []int{1, 3, 8} {
		m := par.NewMachine(machineSize)
		for _, workers := range []int{0, 1, 2, 5, 32} {
			for _, shape := range []struct{ items, bins int }{
				{0, 0}, {0, 5}, {1, 1}, {1, 7}, {17, 3}, {1000, 1},
				{1000, 10}, {1000, 997}, {5000, 64}, {4096, 4096},
			} {
				keys := make([]int, shape.items)
				for i := range keys {
					keys[i] = rng.Intn(max(shape.bins, 1))
				}
				wantIndex, wantPos := serialCountingSort(keys, shape.bins)

				h := m.ShardedHistogram(shape.items, shape.bins, workers, func(i int) int { return keys[i] })
				gotIndex := h.Index()
				if !slices.Equal(gotIndex, wantIndex) {
					t.Fatalf("size=%d workers=%d shape=%+v: index = %v, want %v",
						machineSize, workers, shape, gotIndex, wantIndex)
				}
				if again := h.Index(); !slices.Equal(again, gotIndex) {
					t.Fatalf("Index is not idempotent")
				}
				gotPos := make([]int64, shape.items)
				h.Scatter(func(i int, pos int64) { gotPos[i] = pos })
				if !slices.Equal(gotPos, wantPos) {
					t.Fatalf("size=%d workers=%d shape=%+v: positions = %v, want %v (scatter must be stable)",
						machineSize, workers, shape, gotPos, wantPos)
				}
			}
		}
		m.Close()
	}
}

func TestHistogramScatterPlacesSortedStable(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Sort (key, seq) records by key via the scatter and check the output is
	// key-sorted with per-key sequence order preserved.
	const items, bins = 20000, 101
	keys := make([]int, items)
	rng := rand.New(rand.NewSource(11))
	for i := range keys {
		keys[i] = rng.Intn(bins)
	}
	h := par.ShardedHistogram(items, bins, 0, func(i int) int { return keys[i] })
	index := h.Index()
	outKey := make([]int, items)
	outSeq := make([]int, items)
	h.Scatter(func(i int, pos int64) {
		outKey[pos] = keys[i]
		outSeq[pos] = i
	})
	for k := 0; k < bins; k++ {
		for p := index[k]; p < index[k+1]; p++ {
			if outKey[p] != k {
				t.Fatalf("position %d holds key %d, want %d", p, outKey[p], k)
			}
			if p > index[k] && outSeq[p] <= outSeq[p-1] {
				t.Fatalf("key %d not stable: seq %d before %d", k, outSeq[p-1], outSeq[p])
			}
		}
	}
}

func TestHistogramScatterTwicePanics(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	h := par.ShardedHistogram(4, 2, 0, func(i int) int { return i % 2 })
	h.Scatter(func(i int, pos int64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Scatter did not panic")
		}
	}()
	h.Scatter(func(i int, pos int64) {})
}

func TestPrefixSumMatchesSerial(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	rng := rand.New(rand.NewSource(3))
	for _, machineSize := range []int{1, 4} {
		m := par.NewMachine(machineSize)
		// Lengths straddling the serial threshold, plus tiny cases.
		for _, n := range []int{0, 1, 2, 100, 4095, 4096, 4097, 50000} {
			counts := make([]int64, n)
			for i := range counts {
				counts[i] = int64(rng.Intn(7))
			}
			want := make([]int64, n+1)
			var run int64
			for i, c := range counts {
				want[i] = run
				run += c
			}
			want[n] = run
			for _, workers := range []int{0, 1, 3} {
				got := m.PrefixSum(counts, workers)
				if !slices.Equal(got, want) {
					t.Fatalf("size=%d n=%d workers=%d: prefix sum mismatch", machineSize, n, workers)
				}
			}
		}
		m.Close()
	}
}

func TestReduceMaxInt64(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	xs := []int64{3, -9, 12, 0, 12, -40, 7}
	for _, workers := range []int{0, 1, 2, 7, 19} {
		got := par.ReduceMaxInt64(len(xs), workers, func(lo, hi int) int64 {
			mx := int64(math.MinInt64)
			for i := lo; i < hi; i++ {
				if xs[i] > mx {
					mx = xs[i]
				}
			}
			return mx
		})
		if got != 12 {
			t.Fatalf("workers=%d: max = %d, want 12", workers, got)
		}
	}
	if got := par.ReduceMaxInt64(0, 0, func(lo, hi int) int64 { return 99 }); got != math.MinInt64 {
		t.Fatalf("empty max = %d, want MinInt64", got)
	}
	if got := par.ReduceMaxInt64(-5, 3, func(lo, hi int) int64 { return 99 }); got != math.MinInt64 {
		t.Fatalf("negative-n max = %d, want MinInt64", got)
	}
}

// TestHistogramShardBudget checks that wide key spaces cap the shard count:
// the scratch memory must stay within a small multiple of the item count
// even when a caller asks for many workers.
func TestHistogramShardBudget(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(8)
	defer m.Close()
	// bins >> items: the histogram must still be correct (and, internally,
	// nearly serial — correctness is what we can observe from outside).
	const items, bins = 100, 1 << 20
	keys := make([]int, items)
	for i := range keys {
		keys[i] = (i * 7919) % bins
	}
	h := m.ShardedHistogram(items, bins, 8, func(i int) int { return keys[i] })
	index := h.Index()
	if index[bins] != items {
		t.Fatalf("total = %d, want %d", index[bins], items)
	}
	seen := make([]bool, items)
	h.Scatter(func(i int, pos int64) {
		if pos < 0 || pos >= items {
			t.Errorf("position %d out of range", pos)
			return
		}
		if seen[pos] {
			t.Errorf("position %d assigned twice", pos)
		}
		seen[pos] = true
	})
}

package par

// machine.go is the persistent worker-pool "machine" behind every schedule in
// this package. The paper charges per-iteration kernel-launch overhead to
// GraphBLAS on high-diameter graphs and credits Galois' persistent-thread
// executor for winning Road (§V-A, Table V); a Road BFS runs thousands of
// rounds, and an implementation that forks and joins fresh goroutines per
// round pays Go's spawn cost thousands of times, conflating substrate cost
// with the framework structure the paper actually measures. The Machine
// removes that confound: workers are created once, park on a channel, and are
// woken per region — no goroutine creation after construction. The
// fork-join-vs-pool difference itself is measured by
// BenchmarkAblationRegionLaunch (DESIGN.md §6, item 8).
//
// Execution model: one region = one parallel loop (a For/Reduce call). The
// submitting goroutine publishes wake tokens to the pool, then participates
// itself, so a machine of size W yields W-way parallelism using W-1 parked
// workers plus the caller. Work inside a region is claimed by *slot*: every
// participant atomically claims participant-ids until none remain, so a
// region is guaranteed to complete even when every pool worker is busy — the
// submitter just executes all slots itself. That property makes region
// submission safe from any goroutine, including (accidentally) from inside
// another region; nested submission degrades toward serial execution instead
// of deadlocking.
//
// Stats: the machine counts regions launched, serial (inline) regions,
// barrier crossings (one per participant share per region) and dynamic chunks
// dispatched. Barrier counts are sharded per pool worker (plus one submitter
// shard) on padded cache lines; region-level counters are single atomics
// bumped once per region, so the cost when nobody reads Stats() is a handful
// of uncontended atomic adds per region — noise next to the channel wake
// itself.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Machine is a persistent pool of parked workers executing parallel regions.
// The zero value is not usable; construct with NewMachine. All methods are
// safe for concurrent use by multiple submitting goroutines; regions
// submitted concurrently share the pool and serialize only on worker
// availability. Close releases the workers (see Close for the rules).
type Machine struct {
	size int
	// work is the wake channel: dispatch publishes one token per worker it
	// wants woken; parked workers block on it. Buffered to size so waking
	// never blocks the submitter (a full buffer means every worker already
	// has wake-ups pending and more tokens would be stale anyway).
	work   chan *region
	wg     sync.WaitGroup
	closed atomic.Bool

	// Region-level counters: bumped once per region (not per element), so
	// they stay off the hot path.
	regions       atomic.Int64
	serialRegions atomic.Int64
	chunks        atomic.Int64

	// shards hold the per-worker barrier counters; index size is the
	// submitter shard (dispatch participates on the caller's goroutine).
	shards []shard

	// cancel is the region-scoped cancellation token (cancel.go). Regions
	// capture it at dispatch and poll it at slot/chunk boundaries; nil (the
	// common case) costs one atomic pointer load per region.
	cancel atomic.Pointer[CancelToken]
}

// shard is one cache-line-padded counter block. 64 bytes covers the
// destructive-interference range on the amd64/arm64 hosts this runs on.
type shard struct {
	barriers atomic.Int64
	_        [56]byte
}

// Stats is a snapshot of a machine's synchronization structure — the
// observable counterpart of the paper's launch-overhead argument. One region
// is one parallel loop; one barrier crossing is one participant share joining
// at a region's end; one chunk is one dynamic work unit handed out by a
// ForDynamic/ReduceDynamicInt64 counter.
type Stats struct {
	// Workers is the machine's construction-time parallelism (pool workers
	// plus the submitting goroutine).
	Workers int
	// Regions counts every schedule invocation that had work (n > 0),
	// including the serial ones.
	Regions int64
	// SerialRegions counts regions run inline on the submitter with no
	// worker wake-up (effective width 1).
	SerialRegions int64
	// Barriers counts participant shares joined at region barriers; a
	// parallel region with k participants contributes k.
	Barriers int64
	// Chunks counts dynamically dispatched work chunks.
	Chunks int64
}

// EffectiveWorkers reports the mean participant count over parallel regions
// (0 when no parallel region ran).
func (s Stats) EffectiveWorkers() float64 {
	parallel := s.Regions - s.SerialRegions
	if parallel <= 0 {
		return 0
	}
	return float64(s.Barriers) / float64(parallel)
}

// NewMachine builds a machine with the given total parallelism: workers-1
// parked pool goroutines plus the submitting caller. workers < 1 means
// DefaultWorkers(). This is the only point at which the machine creates
// goroutines.
func NewMachine(workers int) *Machine {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	m := &Machine{
		size: workers,
		//gapvet:ignore alloc-in-timed-region -- machine construction is setup: it runs once per pool (lazily for Default), never per region
		work: make(chan *region, workers),
		//gapvet:ignore alloc-in-timed-region -- same: one shard array per machine, allocated at construction
		shards: make([]shard, workers+1),
	}
	m.wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go m.worker(w)
	}
	return m
}

// Size returns the machine's total parallelism (pool workers + submitter).
func (m *Machine) Size() int { return m.size }

// Close parks the machine permanently: the wake channel is closed and every
// pool worker exits (joined before Close returns, so a leak checker sees the
// goroutine count fall). Close must not race with region submission; regions
// submitted after Close run serially on the caller rather than panicking, so
// a closed machine degrades to a correct serial executor. The process-default
// machine is never closed.
func (m *Machine) Close() {
	if m.closed.CompareAndSwap(false, true) {
		close(m.work)
	}
	m.wg.Wait()
}

// ResetStats zeroes the counters (between benchmark cells).
func (m *Machine) ResetStats() {
	m.regions.Store(0)
	m.serialRegions.Store(0)
	m.chunks.Store(0)
	for i := range m.shards {
		m.shards[i].barriers.Store(0)
	}
}

// Stats snapshots the counters. The snapshot is not atomic across fields;
// callers read it between regions (the Runner reads it between cells).
func (m *Machine) Stats() Stats {
	s := Stats{
		Workers:       m.size,
		Regions:       m.regions.Load(),
		SerialRegions: m.serialRegions.Load(),
		Chunks:        m.chunks.Load(),
	}
	for i := range m.shards {
		s.Barriers += m.shards[i].barriers.Load()
	}
	return s
}

// worker is one parked pool goroutine: it sleeps on the wake channel and
// participates in whatever region each token names. Tokens can be stale (the
// region may have completed by the time the worker wakes); participate then
// claims nothing and the worker parks again.
func (m *Machine) worker(id int) {
	defer m.wg.Done()
	for r := range m.work {
		//gapvet:ignore inline-miss -- participate runs once per dispatched region (its body loops over the region's slots); call overhead is region setup, not per-element cost
		r.participate(&m.shards[id])
	}
}

// region is one parallel loop execution: a body invoked once per slot in
// [0, active), slots claimed atomically by participants.
type region struct {
	body   func(slot int)
	active int32
	cancel *CancelToken // region-scoped cancellation; nil means none
	next   atomic.Int32 // next unclaimed slot
	joined atomic.Int32 // completed slots; the last one closes done
	done   chan struct{}

	mu       sync.Mutex
	panicked bool
	panicVal any
}

// participate claims and runs slots until none remain, crediting barrier
// crossings to the given shard.
func (r *region) participate(sh *shard) {
	var took int64
	for {
		slot := r.next.Add(1) - 1
		if slot >= r.active {
			break
		}
		took++
		r.runSlot(int(slot))
	}
	if took > 0 {
		sh.barriers.Add(took)
	}
}

// runSlot executes one slot, capturing a panic instead of letting it kill a
// pool worker, and always joins the barrier so the region cannot deadlock. A
// cancelled region skips the body but still joins, which is what lets a
// deadline drain a multi-slot region without anyone waiting forever.
func (r *region) runSlot(slot int) {
	defer func() {
		if p := recover(); p != nil {
			r.mu.Lock()
			if !r.panicked {
				r.panicked, r.panicVal = true, p
			}
			r.mu.Unlock()
		}
		if r.joined.Add(1) == r.active {
			close(r.done)
		}
	}()
	if r.cancel.Cancelled() {
		return
	}
	r.body(slot)
}

// rethrow surfaces a captured region panic on the submitting goroutine. The
// original panic value is preserved so recover-based callers see what the
// body threw; the machine provenance travels in the wrapper only when the
// value was not already an error or string a caller might match on.
func (r *region) rethrow() {
	r.mu.Lock()
	p, ok := r.panicVal, r.panicked
	r.mu.Unlock()
	if ok {
		panic(p)
	}
}

// orDefault lets a nil *Machine mean "the process-default machine", so a
// zero-valued kernel.Options still executes.
func (m *Machine) orDefault() *Machine {
	if m == nil {
		return Default()
	}
	return m
}

// clamp normalizes a requested region width exactly like the historical
// clampWorkers: < 1 means the machine's size, and a region never uses more
// slots than it has iterations. The result may exceed the pool size —
// participants then execute several slots each, preserving the slot-indexed
// semantics (ForWorker ids, ForCyclic strides) that callers size their
// per-worker state by.
func (m *Machine) clamp(workers, n int) int {
	if workers < 1 {
		workers = m.size
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// dispatch runs body(slot) for every slot in [0, active) across the pool and
// the calling goroutine, returning after every slot has joined the barrier.
func (m *Machine) dispatch(active int, body func(slot int)) {
	//gapvet:ignore alloc-in-timed-region -- one completion channel per region, amortized over the region's work (same class as the per-phase func-literal exemption)
	r := &region{body: body, active: int32(active), cancel: m.cancel.Load(), done: make(chan struct{})}
	m.regions.Add(1)
	if m.closed.Load() {
		// Graceful after-Close degradation: the pool is gone, so the caller
		// runs every slot itself (still one region, still a correct result).
		r.participate(&m.shards[m.size])
		<-r.done
		r.rethrow()
		return
	}
	wake := active - 1
	if wake > m.size-1 {
		wake = m.size - 1
	}
	for i := 0; i < wake; i++ {
		select {
		case m.work <- r:
		default:
			// Wake buffer full: every worker already has pending wake-ups.
			// Remaining slots are covered by the submitter and by workers
			// finishing earlier regions, so dropping tokens is safe.
			i = wake
		}
	}
	r.participate(&m.shards[m.size])
	<-r.done
	r.rethrow()
}

// serial accounts for an inline region (width 1) and runs nothing itself.
func (m *Machine) serial() {
	m.regions.Add(1)
	m.serialRegions.Add(1)
}

// ---------------------------------------------------------------------------
// Schedules. Signatures mirror the package-level free functions, which are
// now thin shims over the process-default machine (par.go).

// For runs fn(i) for every i in [0, n) using statically partitioned
// contiguous blocks, one per slot. With a cancel token installed the loop
// polls every cancelStride indices, so even one huge block reacts to a
// deadline (slot-boundary checks alone would be too coarse here).
func (m *Machine) For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m = m.orDefault()
	tok := m.cancel.Load()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		for i := 0; i < n; i++ {
			if tok != nil && i&(cancelStride-1) == 0 && tok.Cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	m.dispatch(active, func(slot int) {
		lo, hi := slot*n/active, (slot+1)*n/active
		for i := lo; i < hi; i++ {
			if tok != nil && i&(cancelStride-1) == 0 && tok.Cancelled() {
				return
			}
			fn(i)
		}
	})
}

// ForBlocked runs fn(lo, hi) over statically partitioned contiguous ranges,
// one per slot. Every static range is non-empty: clamp guarantees
// active <= n, and i*n/active is strictly monotone in i when active <= n.
func (m *Machine) ForBlocked(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	m = m.orDefault()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		if m.cancel.Load().Cancelled() {
			return
		}
		fn(0, n)
		return
	}
	m.dispatch(active, func(slot int) {
		fn(slot*n/active, (slot+1)*n/active)
	})
}

// ForDynamic runs fn(lo, hi) over chunks of the given size handed out from a
// shared atomic counter (the dynamically load-balanced schedule).
func (m *Machine) ForDynamic(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	m = m.orDefault()
	tok := m.cancel.Load()
	active := m.clamp(workers, (n+chunk-1)/chunk)
	if active == 1 {
		m.serial()
		if tok.Cancelled() {
			return
		}
		m.chunks.Add(1)
		fn(0, n)
		return
	}
	//gapvet:ignore closure-capture-hot -- one work-stealing cursor per dynamic region: the cell is the region's shared state, amortized over all its chunks
	var next atomic.Int64
	counts := make([]int64, active)
	m.dispatch(active, func(slot int) {
		var c int64
		for {
			if tok.Cancelled() {
				break
			}
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			c++
			fn(lo, hi)
		}
		counts[slot] = c
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	m.chunks.Add(total)
}

// ForCyclic runs fn(worker, i) with indices distributed cyclically: slot w
// handles i = w, w+active, w+2*active, ...
func (m *Machine) ForCyclic(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	m = m.orDefault()
	tok := m.cancel.Load()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		for i := 0; i < n; i++ {
			if tok != nil && i&(cancelStride-1) == 0 && tok.Cancelled() {
				return
			}
			fn(0, i)
		}
		return
	}
	m.dispatch(active, func(slot int) {
		for c, i := 0, slot; i < n; c, i = c+1, i+active {
			if tok != nil && c&(cancelStride-1) == 0 && tok.Cancelled() {
				return
			}
			fn(slot, i)
		}
	})
}

// ForWorker runs fn once per slot with that slot's id and statically
// assigned range — the building block for kernels with per-thread state.
func (m *Machine) ForWorker(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	m = m.orDefault()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		if m.cancel.Load().Cancelled() {
			return
		}
		fn(0, 0, n)
		return
	}
	m.dispatch(active, func(slot int) {
		fn(slot, slot*n/active, (slot+1)*n/active)
	})
}

// ReduceInt64 computes the sum of fn(lo, hi) over statically partitioned
// ranges, one partial per slot, combined serially after the barrier.
func (m *Machine) ReduceInt64(n, workers int, fn func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	m = m.orDefault()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		if m.cancel.Load().Cancelled() {
			return 0
		}
		return fn(0, n)
	}
	partial := make([]int64, active)
	m.dispatch(active, func(slot int) {
		partial[slot] = fn(slot*n/active, (slot+1)*n/active)
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceFloat64 is ReduceInt64 for float64 partials.
func (m *Machine) ReduceFloat64(n, workers int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	m = m.orDefault()
	active := m.clamp(workers, n)
	if active == 1 {
		m.serial()
		if m.cancel.Load().Cancelled() {
			return 0
		}
		return fn(0, n)
	}
	partial := make([]float64, active)
	m.dispatch(active, func(slot int) {
		partial[slot] = fn(slot*n/active, (slot+1)*n/active)
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceDynamicInt64 is ReduceInt64 with dynamically scheduled chunks.
func (m *Machine) ReduceDynamicInt64(n, chunk, workers int, fn func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if chunk < 1 {
		chunk = 1
	}
	m = m.orDefault()
	tok := m.cancel.Load()
	active := m.clamp(workers, (n+chunk-1)/chunk)
	if active == 1 {
		m.serial()
		if tok.Cancelled() {
			return 0
		}
		m.chunks.Add(1)
		return fn(0, n)
	}
	var next atomic.Int64
	partial := make([]int64, active)
	counts := make([]int64, active)
	m.dispatch(active, func(slot int) {
		var local, c int64
		for {
			if tok.Cancelled() {
				break
			}
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			c++
			local += fn(lo, hi)
		}
		partial[slot] = local
		counts[slot] = c
	})
	var total, totalChunks int64
	for slot := 0; slot < active; slot++ {
		total += partial[slot]
		totalChunks += counts[slot]
	}
	m.chunks.Add(totalChunks)
	return total
}

// String identifies the machine in logs and test failures.
func (m *Machine) String() string {
	return fmt.Sprintf("par.Machine(workers=%d)", m.size)
}

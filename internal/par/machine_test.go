package par_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

// TestMachineCloseJoinsWorkers is the lifecycle leak assertion: every pool
// worker created by NewMachine must have exited by the time Close returns.
func TestMachineCloseJoinsWorkers(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, workers := range []int{1, 2, 8} {
		before := runtime.NumGoroutine()
		m := par.NewMachine(workers)
		// Run some regions so workers have actually woken at least once.
		var sum atomic.Int64
		m.For(1000, workers, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 499500 {
			t.Fatalf("workers=%d: sum = %d, want 499500", workers, got)
		}
		m.Close()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("workers=%d: %d goroutines before NewMachine, %d after Close",
					workers, before, runtime.NumGoroutine())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestMachineCloseIdempotentAndUsable: double Close is safe, and a closed
// machine still executes regions correctly (serially on the caller).
func TestMachineCloseIdempotentAndUsable(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	m.Close()
	m.Close()
	var sum atomic.Int64
	m.For(100, 4, func(i int) { sum.Add(1) })
	if sum.Load() != 100 {
		t.Fatalf("closed machine ran %d iterations, want 100", sum.Load())
	}
	if got := m.ReduceInt64(10, 4, func(lo, hi int) int64 { return int64(hi - lo) }); got != 10 {
		t.Fatalf("closed machine reduce = %d, want 10", got)
	}
}

// TestMachineConcurrentRegions drives regions from many submitting goroutines
// at once (run under -race by scripts/check.sh). Regions submitted
// concurrently share the pool; slot claiming guarantees each completes even
// when all workers are busy elsewhere.
func TestMachineConcurrentRegions(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	defer m.Close()
	const submitters = 8
	const rounds = 25
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := 64 + s + r
				got := m.ReduceInt64(n, 4, func(lo, hi int) int64 {
					var sum int64
					for i := lo; i < hi; i++ {
						sum += int64(i)
					}
					return sum
				})
				want := int64(n) * int64(n-1) / 2
				if got != want {
					t.Errorf("submitter %d round %d: sum = %d, want %d", s, r, got, want)
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestMachineNestedRegions: a region body that (against CONTRIBUTING advice)
// submits another region must complete rather than deadlock — the inner
// submitter absorbs unclaimed slots itself.
func TestMachineNestedRegions(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(2)
	defer m.Close()
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.For(4, 2, func(i int) {
			m.For(8, 2, func(j int) { total.Add(1) })
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested region submission deadlocked")
	}
	if total.Load() != 32 {
		t.Fatalf("nested regions ran %d inner iterations, want 32", total.Load())
	}
}

// TestMachinePanicPropagation: a panicking region body must surface on the
// submitting goroutine and must not kill pool workers or deadlock the
// machine.
func TestMachinePanicPropagation(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	defer m.Close()

	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("panic in region body did not propagate to submitter")
			}
			if s, ok := p.(string); !ok || s != "boom" {
				t.Fatalf("propagated panic = %v, want \"boom\"", p)
			}
		}()
		m.For(100, 4, func(i int) {
			if i == 37 {
				panic("boom")
			}
		})
	}()

	// The machine must still be fully operational: all workers alive, next
	// region completes.
	var sum atomic.Int64
	m.For(1000, 4, func(i int) { sum.Add(1) })
	if sum.Load() != 1000 {
		t.Fatalf("post-panic region ran %d iterations, want 1000", sum.Load())
	}
}

// TestMachinePanicSerial: the inline (width-1) fast path propagates panics
// naturally too.
func TestMachinePanicSerial(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("serial region panic did not propagate")
		}
	}()
	m.For(1, 4, func(i int) { panic("serial boom") })
}

// TestMachineStats: region/serial/barrier/chunk counters reflect the
// synchronization structure of the submitted work, and ResetStats zeroes
// them.
func TestMachineStats(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	defer m.Close()

	if s := m.Stats(); s.Regions != 0 || s.Barriers != 0 || s.Chunks != 0 {
		t.Fatalf("fresh machine stats nonzero: %+v", s)
	}
	if s := m.Stats(); s.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", s.Workers)
	}

	m.ForBlocked(1000, 4, func(lo, hi int) {}) // parallel: width 4
	m.For(1, 4, func(i int) {})                // serial fast path
	m.ForDynamic(100, 10, 4, func(lo, hi int) {})

	s := m.Stats()
	if s.Regions != 3 {
		t.Fatalf("Regions = %d, want 3", s.Regions)
	}
	if s.SerialRegions != 1 {
		t.Fatalf("SerialRegions = %d, want 1", s.SerialRegions)
	}
	// The blocked region has 4 slots, the dynamic region 4 slots: slots are
	// claimed by 1..4 participants, and every claimed share is one barrier
	// crossing, so Barriers counts total participant shares in [2, 8].
	if s.Barriers < 2 || s.Barriers > 8 {
		t.Fatalf("Barriers = %d, want within [2, 8]", s.Barriers)
	}
	if s.Chunks != 10 {
		t.Fatalf("Chunks = %d, want 10 (100 iterations / chunk 10)", s.Chunks)
	}
	if ew := s.EffectiveWorkers(); ew <= 0 || ew > 4 {
		t.Fatalf("EffectiveWorkers = %v, want in (0, 4]", ew)
	}

	m.ResetStats()
	if s := m.Stats(); s.Regions != 0 || s.SerialRegions != 0 || s.Barriers != 0 || s.Chunks != 0 {
		t.Fatalf("stats after ResetStats nonzero: %+v", s)
	}
}

// TestMachineStatsSerialChunks: the inline dynamic fast path still counts its
// single chunk.
func TestMachineStatsSerialChunks(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(1)
	defer m.Close()
	m.ForDynamic(100, 10, 1, func(lo, hi int) {})
	got := m.Stats()
	if got.Chunks != 1 {
		t.Fatalf("serial dynamic Chunks = %d, want 1", got.Chunks)
	}
	if got.SerialRegions != 1 || got.Regions != 1 {
		t.Fatalf("serial dynamic stats = %+v", got)
	}
}

// TestMachineWidthExceedsPool: a region may request more slots than the pool
// has workers (Optimized mode simulating hyperthreading on a small machine);
// participants then run several slots each, and slot-indexed semantics
// (ForWorker ids, ForCyclic strides) hold exactly.
func TestMachineWidthExceedsPool(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(2)
	defer m.Close()
	const n, workers = 57, 9
	covered := make([]int32, n)
	seen := make([]int32, workers)
	m.ForWorker(n, workers, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker slot %d invoked %d times", w, c)
		}
	}
	owner := make([]int32, 20)
	m.ForCyclic(20, 4, func(w, i int) { atomic.StoreInt32(&owner[i], int32(w)) })
	for i := range owner {
		if owner[i] != int32(i%4) {
			t.Fatalf("cyclic index %d owned by %d, want %d", i, owner[i], i%4)
		}
	}
}

// TestMachineString: the identity string names the width (used in logs and
// failure messages).
func TestMachineString(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(3)
	defer m.Close()
	if got, want := m.String(), "par.Machine(workers=3)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestStaticPartitionProperty is the satellite-1 property test: for all
// (n, workers), the static partition used by ForBlocked / Reduce* — slot s
// covers [s*n/active, (s+1)*n/active) — covers [0, n) exactly once with every
// range non-empty. This is why the historical `if lo < hi` guards were dead
// code: clamp guarantees active <= n, and with active <= n the split points
// s*n/active are strictly increasing.
func TestStaticPartitionProperty(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(4)
	defer m.Close()
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw%5000) + 1
		workers := int(wRaw%64) + 1
		covered := make([]int32, n)
		ranges := atomic.Int64{}
		m.ForBlocked(n, workers, func(lo, hi int) {
			if lo >= hi {
				return // empty range: leaves covered gap -> property fails below
			}
			ranges.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i := range covered {
			if covered[i] != 1 {
				t.Logf("n=%d workers=%d: index %d covered %d times", n, workers, i, covered[i])
				return false
			}
		}
		// Every slot's range must have been non-empty: exactly
		// min(workers, n) ranges ran.
		want := int64(workers)
		if n < workers {
			want = int64(n)
		}
		if ranges.Load() != want {
			t.Logf("n=%d workers=%d: %d non-empty ranges, want %d", n, workers, ranges.Load(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultMachineSingleton: the free functions share one lazily built
// machine sized to DefaultWorkers.
func TestDefaultMachineSingleton(t *testing.T) {
	m1 := par.Default()
	m2 := par.Default()
	if m1 != m2 {
		t.Fatal("Default() returned distinct machines")
	}
	if m1.Size() != par.DefaultWorkers() {
		t.Fatalf("default machine size = %d, want DefaultWorkers = %d", m1.Size(), par.DefaultWorkers())
	}
}

// TestNilMachineUsesDefault: schedule methods on a nil *Machine run on the
// process default, so a zero kernel.Options still executes.
func TestNilMachineUsesDefault(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var m *par.Machine
	got := m.ReduceInt64(100, 4, func(lo, hi int) int64 { return int64(hi - lo) })
	if got != 100 {
		t.Fatalf("nil machine reduce = %d, want 100", got)
	}
}

// TestMachineSchedulesMatchFreeFunctions cross-checks every schedule method
// against its shim for a handful of shapes.
func TestMachineSchedulesMatchFreeFunctions(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := par.NewMachine(3)
	defer m.Close()
	for _, n := range []int{0, 1, 17, 256} {
		for _, w := range []int{0, 1, 3, 7} {
			name := fmt.Sprintf("n=%d w=%d", n, w)
			sum := func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(3*i + 1)
				}
				return s
			}
			if got, want := m.ReduceInt64(n, w, sum), par.ReduceInt64(n, w, sum); got != want {
				t.Fatalf("%s: ReduceInt64 machine=%d shim=%d", name, got, want)
			}
			if got, want := m.ReduceDynamicInt64(n, 5, w, sum), par.ReduceDynamicInt64(n, 5, w, sum); got != want {
				t.Fatalf("%s: ReduceDynamicInt64 machine=%d shim=%d", name, got, want)
			}
			var a, b atomic.Int64
			m.For(n, w, func(i int) { a.Add(int64(i)) })
			par.For(n, w, func(i int) { b.Add(int64(i)) })
			if a.Load() != b.Load() {
				t.Fatalf("%s: For machine=%d shim=%d", name, a.Load(), b.Load())
			}
		}
	}
}

// Package par provides the parallelism substrate shared by every framework in
// this repository.
//
// The paper runs all frameworks on the same 32-core (64-thread) machine; this
// package is the Go analogue of that machine — literally: all schedules
// execute on a Machine, a persistent pool of parked workers (machine.go).
// Frameworks request a worker count (the Baseline rule set pins it to the
// logical CPU count, the Optimized rule set may raise it to simulate
// hyperthreading) and use the loop helpers for both statically partitioned
// ("NUMA-blocked") and dynamically load-balanced ("work-stealing") parallel
// iteration.
//
// The package-level functions below are thin shims over the lazily built
// process-default machine, so historical call sites keep working unchanged.
// Code that wants observable synchronization structure (per-cell region and
// barrier counts) should hold its own *Machine — kernel.Options carries one —
// and call the identically named methods on it.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers reports the default degree of parallelism: the number of
// logical CPUs available to the process. This mirrors the paper's Baseline
// rule of "each framework used the same number of processors".
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

var (
	defaultOnce    sync.Once
	defaultMachine *Machine
)

// Default returns the lazily built process-default machine, sized to
// DefaultWorkers(). It is never closed; its pool goroutines live for the
// process lifetime (testutil.CheckGoroutines warms it before snapshotting the
// goroutine count for exactly that reason).
func Default() *Machine {
	defaultOnce.Do(func() {
		defaultMachine = NewMachine(DefaultWorkers())
	})
	return defaultMachine
}

// For runs fn(i) for every i in [0, n) using statically partitioned chunks,
// one contiguous block per worker, on the process-default machine.
func For(n, workers int, fn func(i int)) {
	Default().For(n, workers, fn)
}

// ForBlocked runs fn(lo, hi) over statically partitioned contiguous ranges,
// one per worker, on the process-default machine. It is For with the
// per-index closure cost amortized away; inner loops that need peak
// throughput use this form.
func ForBlocked(n, workers int, fn func(lo, hi int)) {
	Default().ForBlocked(n, workers, fn)
}

// ForDynamic runs fn(lo, hi) over chunks of the given size handed out from a
// shared atomic counter, on the process-default machine. This is the
// dynamically load-balanced ("guided" / work-stealing) schedule that the
// paper credits for Galois' and NWGraph's good behaviour on skew-degree
// graphs.
func ForDynamic(n, chunk, workers int, fn func(lo, hi int)) {
	Default().ForDynamic(n, chunk, workers, fn)
}

// ForCyclic runs fn(i) with rows distributed cyclically across workers:
// worker w handles i = w, w+workers, w+2*workers, ... The paper calls out
// NWGraph's cyclic distribution of rows as the reason its triangle counting
// load-balances well on skewed graphs. Runs on the process-default machine.
func ForCyclic(n, workers int, fn func(worker, i int)) {
	Default().ForCyclic(n, workers, fn)
}

// ForWorker runs fn once per worker with that worker's id and statically
// assigned range, on the process-default machine. It is the building block
// for kernels that keep per-thread local state (GKC's local buffers, Galois'
// per-thread worklist chunks).
func ForWorker(n, workers int, fn func(worker, lo, hi int)) {
	Default().ForWorker(n, workers, fn)
}

// ReduceInt64 computes the sum of fn(lo, hi) over statically partitioned
// ranges on the process-default machine. Each worker produces one partial;
// partials are combined serially, so fn need not synchronize its
// accumulation.
func ReduceInt64(n, workers int, fn func(lo, hi int) int64) int64 {
	return Default().ReduceInt64(n, workers, fn)
}

// ReduceFloat64 is ReduceInt64 for float64 partials (used by PageRank error
// norms and BC accumulation checks).
func ReduceFloat64(n, workers int, fn func(lo, hi int) float64) float64 {
	return Default().ReduceFloat64(n, workers, fn)
}

// ReduceDynamicInt64 is ReduceInt64 with dynamically scheduled chunks, for
// reductions over skew-cost iteration spaces (triangle counting).
func ReduceDynamicInt64(n, chunk, workers int, fn func(lo, hi int) int64) int64 {
	return Default().ReduceDynamicInt64(n, chunk, workers, fn)
}

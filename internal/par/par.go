// Package par provides the fork-join parallelism substrate shared by every
// framework in this repository.
//
// The paper runs all frameworks on the same 32-core (64-thread) machine; this
// package is the Go analogue of that machine. Frameworks request a worker
// count (the Baseline rule set pins it to the logical CPU count, the Optimized
// rule set may raise it to simulate hyperthreading) and use the loop helpers
// here for both statically partitioned ("NUMA-blocked") and dynamically
// load-balanced ("work-stealing") parallel iteration.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers reports the default degree of parallelism: the number of
// logical CPUs available to the process. This mirrors the paper's Baseline
// rule of "each framework used the same number of processors".
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// clampWorkers normalizes a requested worker count: values < 1 mean "use the
// default", and there is never a reason to use more workers than iterations.
func clampWorkers(workers, n int) int {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using statically partitioned chunks,
// one contiguous block per worker. Static partitioning is the analogue of the
// NUMA-blocked allocation the paper describes for topology-driven kernels:
// each worker touches one contiguous region of the iteration space.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForBlocked runs fn(lo, hi) over statically partitioned contiguous ranges,
// one per worker. It is For with the per-index closure cost amortized away;
// inner loops that need peak throughput use this form.
func ForBlocked(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			if lo < hi {
				fn(lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs fn(lo, hi) over chunks of the given size handed out from a
// shared atomic counter. This is the dynamically load-balanced ("guided" /
// work-stealing) schedule that the paper credits for Galois' and NWGraph's
// good behaviour on skew-degree graphs.
func ForDynamic(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	workers = clampWorkers(workers, (n+chunk-1)/chunk)
	if workers == 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForCyclic runs fn(i) with rows distributed cyclically across workers:
// worker w handles i = w, w+workers, w+2*workers, ... The paper calls out
// NWGraph's cyclic distribution of rows as the reason its triangle counting
// load-balances well on skewed graphs.
func ForCyclic(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForWorker runs fn once per worker with that worker's id and statically
// assigned range. It is the building block for kernels that keep per-thread
// local state (GKC's local buffers, Galois' per-thread worklist chunks).
func ForWorker(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ReduceInt64 computes the sum of fn(lo, hi) over statically partitioned
// ranges. Each worker produces one partial; partials are combined serially,
// so fn need not synchronize its accumulation.
func ReduceInt64(n, workers int, fn func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		return fn(0, n)
	}
	partial := make([]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				partial[w] = fn(lo, hi)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceFloat64 is ReduceInt64 for float64 partials (used by PageRank error
// norms and BC accumulation checks).
func ReduceFloat64(n, workers int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		return fn(0, n)
	}
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			if lo < hi {
				partial[w] = fn(lo, hi)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// ReduceDynamicInt64 is ReduceInt64 with dynamically scheduled chunks, for
// reductions over skew-cost iteration spaces (triangle counting).
func ReduceDynamicInt64(n, chunk, workers int, fn func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if chunk < 1 {
		chunk = 1
	}
	workers = clampWorkers(workers, (n+chunk-1)/chunk)
	if workers == 1 {
		return fn(0, n)
	}
	partial := make([]int64, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var local int64
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				local += fn(lo, hi)
			}
			partial[w] = local
		}(w)
	}
	wg.Wait()
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

package par_test

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, workers := range []int{0, 1, 3, 16} {
		for _, n := range []int{0, 1, 7, 1000} {
			counts := make([]int32, n)
			par.For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForBlockedPartitions(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, workers := range []int{1, 4, 9} {
		n := 103
		covered := make([]int32, n)
		par.ForBlocked(n, workers, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty range [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestForDynamicCoversAllChunks(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	n := 1001
	covered := make([]int32, n)
	par.ForDynamic(n, 13, 5, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	// Degenerate chunk sizes.
	total := int32(0)
	par.ForDynamic(10, 0, 3, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 10 {
		t.Fatalf("chunk=0 covered %d, want 10", total)
	}
}

func TestForCyclicAssignsRoundRobin(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const n, workers = 20, 4
	owner := make([]int32, n)
	par.ForCyclic(n, workers, func(w, i int) { owner[i] = int32(w) })
	for i := 0; i < n; i++ {
		if owner[i] != int32(i%workers) {
			t.Fatalf("index %d owned by %d, want %d", i, owner[i], i%workers)
		}
	}
}

func TestForWorkerRangesDisjointAndComplete(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const n, workers = 57, 5
	covered := make([]int32, n)
	seen := make([]int32, workers)
	par.ForWorker(n, workers, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d invoked %d times", w, c)
		}
	}
}

func TestReduceInt64(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, workers := range []int{1, 4} {
		got := par.ReduceInt64(100, workers, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		if got != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, got)
		}
	}
	if par.ReduceInt64(0, 4, func(int, int) int64 { return 99 }) != 0 {
		t.Fatal("empty reduce nonzero")
	}
}

func TestReduceFloat64(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	got := par.ReduceFloat64(10, 3, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != 10 {
		t.Fatalf("sum = %v, want 10", got)
	}
}

func TestReduceDynamicInt64(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	got := par.ReduceDynamicInt64(1000, 7, 4, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s++
		}
		return s
	})
	if got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
}

// Property: every reduce variant agrees with a serial sum for arbitrary
// worker counts.
func TestReduceProperty(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	f := func(n uint16, workers uint8) bool {
		nn := int(n % 2048)
		w := int(workers%8) + 1
		sum := func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i % 97)
			}
			return s
		}
		want := sum(0, nn)
		return par.ReduceInt64(nn, w, sum) == want &&
			par.ReduceDynamicInt64(nn, 9, w, sum) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if par.DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

package report

// latency.go summarizes served-query latency records from the gapd load
// driver (cmd/workload -addr ...): throughput, shed rate, and the tail
// quantiles the serving layer's deadline/admission design is judged by.
// Records travel as JSONL — one object per query — so runs can be archived
// next to the benchmark journal and re-summarized offline.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// QueryRecord is one served query as observed by the load driver.
type QueryRecord struct {
	// OffsetMicros is the send time relative to the run start.
	OffsetMicros int64 `json:"t_us"`
	// Micros is the end-to-end service latency the client saw.
	Micros int64 `json:"us"`
	// Code is the response code string (serve.Code values: "OK",
	// "RESOURCE_EXHAUSTED", ...).
	Code string `json:"code"`
	// Kernel and Graph are the query coordinates.
	Kernel string `json:"kernel,omitempty"`
	Graph  string `json:"graph,omitempty"`
	// Client is the driver's client index, for per-connection forensics.
	Client int `json:"client"`
}

// shedCode mirrors serve.Code.Shed without importing the serving package:
// deliberate refusals, not failures.
func shedCode(code string) bool {
	return code == "RESOURCE_EXHAUSTED" || code == "UNAVAILABLE"
}

// LatencySummary aggregates one load-driver run.
type LatencySummary struct {
	Count  int // every response received
	OK     int
	Shed   int // admission/quarantine/drain refusals
	Failed int // everything else: deadline, panic, bad request

	WallSeconds float64
	// QPS is completed-OK throughput; OfferedQPS counts every query sent.
	QPS        float64
	OfferedQPS float64
	// ShedRate is Shed/Count.
	ShedRate float64

	// Latency quantiles in microseconds, over OK responses only (shed
	// responses return in microseconds by design and would flatter the tail).
	MeanMicros int64
	P50Micros  int64
	P90Micros  int64
	P99Micros  int64
	P999Micros int64
	MaxMicros  int64
}

// Summarize folds the records of one run; wall is the measured run length.
func Summarize(records []QueryRecord, wall time.Duration) LatencySummary {
	s := LatencySummary{Count: len(records), WallSeconds: wall.Seconds()}
	var okLat []int64
	var sum int64
	for _, r := range records {
		switch {
		case r.Code == "OK":
			s.OK++
			okLat = append(okLat, r.Micros)
			sum += r.Micros
		case shedCode(r.Code):
			s.Shed++
		default:
			s.Failed++
		}
	}
	if s.WallSeconds > 0 {
		s.QPS = float64(s.OK) / s.WallSeconds
		s.OfferedQPS = float64(s.Count) / s.WallSeconds
	}
	if s.Count > 0 {
		s.ShedRate = float64(s.Shed) / float64(s.Count)
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		s.MeanMicros = sum / int64(len(okLat))
		s.P50Micros = quantileMicros(okLat, 0.50)
		s.P90Micros = quantileMicros(okLat, 0.90)
		s.P99Micros = quantileMicros(okLat, 0.99)
		s.P999Micros = quantileMicros(okLat, 0.999)
		s.MaxMicros = okLat[len(okLat)-1]
	}
	return s
}

// quantileMicros is the nearest-rank quantile of a sorted sample.
func quantileMicros(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary as the driver's human-readable report.
func (s LatencySummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries %d (ok %d, shed %d, failed %d)  wall %.2fs\n",
		s.Count, s.OK, s.Shed, s.Failed, s.WallSeconds)
	fmt.Fprintf(&b, "throughput %.1f qps ok (%.1f offered)  shed rate %.2f%%\n",
		s.QPS, s.OfferedQPS, 100*s.ShedRate)
	fmt.Fprintf(&b, "latency us: p50 %d  p90 %d  p99 %d  p999 %d  max %d  mean %d\n",
		s.P50Micros, s.P90Micros, s.P99Micros, s.P999Micros, s.MaxMicros, s.MeanMicros)
	return b.String()
}

// LatencyByKernel renders a per-kernel breakdown table: count, error/shed
// splits, and the tail per query type.
func LatencyByKernel(records []QueryRecord, wall time.Duration) string {
	byKernel := map[string][]QueryRecord{}
	var order []string
	for _, r := range records {
		k := r.Kernel
		if k == "" {
			k = "?"
		}
		if _, ok := byKernel[k]; !ok {
			order = append(order, k)
		}
		byKernel[k] = append(byKernel[k], r)
	}
	sort.Strings(order)
	t := &table{header: []string{"Kernel", "Count", "OK", "Shed", "Failed", "p50us", "p99us", "p999us"}}
	for _, k := range order {
		sub := Summarize(byKernel[k], wall)
		t.addRow(k,
			fmt.Sprintf("%d", sub.Count), fmt.Sprintf("%d", sub.OK),
			fmt.Sprintf("%d", sub.Shed), fmt.Sprintf("%d", sub.Failed),
			fmt.Sprintf("%d", sub.P50Micros), fmt.Sprintf("%d", sub.P99Micros),
			fmt.Sprintf("%d", sub.P999Micros))
	}
	return t.String()
}

// BenchLine renders the summary as one go-test benchmark line, so
// scripts/bench.sh's awk folding ingests serving-layer runs next to the
// kernel benchmarks: qps/p50/p99/p999/shed land in the "extra" field.
func (s LatencySummary) BenchLine(name string) string {
	nsPerOp := int64(0)
	if s.OK > 0 {
		nsPerOp = int64(s.WallSeconds * 1e9 / float64(s.OK))
	}
	return fmt.Sprintf("Benchmark%s 1 %d ns/op %.1f qps %d p50us %d p99us %d p999us %.4f shedrate",
		name, nsPerOp, s.QPS, s.P50Micros, s.P99Micros, s.P999Micros, s.ShedRate)
}

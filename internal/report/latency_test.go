package report

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeClassifiesCodes(t *testing.T) {
	recs := []QueryRecord{
		{Micros: 100, Code: "OK", Kernel: "BFS"},
		{Micros: 200, Code: "OK", Kernel: "PR"},
		{Micros: 5, Code: "RESOURCE_EXHAUSTED", Kernel: "BFS"},
		{Micros: 5, Code: "UNAVAILABLE", Kernel: "CC"},
		{Micros: 50000, Code: "DEADLINE_EXCEEDED", Kernel: "SSSP"},
		{Micros: 300, Code: "INTERNAL", Kernel: "BFS"},
	}
	s := Summarize(recs, 2*time.Second)
	if s.Count != 6 || s.OK != 2 || s.Shed != 2 || s.Failed != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if s.QPS != 1.0 {
		t.Errorf("QPS = %v, want 1.0 (2 ok / 2s)", s.QPS)
	}
	if s.OfferedQPS != 3.0 {
		t.Errorf("OfferedQPS = %v, want 3.0", s.OfferedQPS)
	}
	if got := s.ShedRate; got < 0.33 || got > 0.34 {
		t.Errorf("ShedRate = %v, want 2/6", got)
	}
	// Quantiles cover OK responses only: the 50ms deadline-exceeded record
	// must not inflate the tail.
	if s.MaxMicros != 200 || s.P50Micros != 100 {
		t.Errorf("latencies = p50 %d max %d, want 100/200", s.P50Micros, s.MaxMicros)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := make([]int64, 1000)
	for i := range sorted {
		sorted[i] = int64(i + 1) // 1..1000
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {0.999, 999}, {1.0, 1000},
	} {
		if got := quantileMicros(sorted, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantileMicros([]int64{42}, 0.999); got != 42 {
		t.Errorf("single-sample quantile = %d, want 42", got)
	}
	if got := quantileMicros(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestSummaryRendering(t *testing.T) {
	recs := []QueryRecord{
		{Micros: 100, Code: "OK", Kernel: "BFS"},
		{Micros: 10, Code: "RESOURCE_EXHAUSTED", Kernel: "BFS"},
		{Micros: 220, Code: "OK", Kernel: "PR"},
	}
	s := Summarize(recs, time.Second)
	out := s.String()
	for _, want := range []string{"queries 3", "ok 2", "shed 1", "qps"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
	table := LatencyByKernel(recs, time.Second)
	for _, want := range []string{"BFS", "PR", "p99us"} {
		if !strings.Contains(table, want) {
			t.Errorf("kernel table %q missing %q", table, want)
		}
	}
}

func TestBenchLineShape(t *testing.T) {
	recs := []QueryRecord{{Micros: 1000, Code: "OK"}, {Micros: 3000, Code: "OK"}}
	line := Summarize(recs, time.Second).BenchLine("Serve/all/c4")
	// Must parse as a go-bench line: name, iterations, ns/op, extras.
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[0] != "BenchmarkServe/all/c4" || fields[1] != "1" || fields[3] != "ns/op" {
		t.Fatalf("bench line %q is not go-bench shaped", line)
	}
	for _, want := range []string{"qps", "p99us", "shedrate"} {
		if !strings.Contains(line, want) {
			t.Errorf("bench line %q missing %q", line, want)
		}
	}
}

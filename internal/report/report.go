// Package report renders the paper's tables from benchmark results: Table I
// (graph properties), Tables II/III (framework attributes and algorithm
// choices), Table IV (fastest times with the winning framework), and Table V
// (the speedup heat map against the GAP reference, rendered as percentages
// exactly like the paper). A CSV export mirrors the paper's companion
// spreadsheet of complete timing data.
package report

import (
	"fmt"
	"sort"
	"strings"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// table is a minimal column-aligned text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// TableI renders the graph-property table from computed stats.
func TableI(names []string, stats []graph.Stats) string {
	t := &table{header: []string{"Name", "Vertices", "Edges", "Directed", "Degree", "Degree Distribution", "Approx. Diameter"}}
	for i, name := range names {
		s := stats[i]
		dir := "N"
		if s.Directed {
			dir = "Y"
		}
		t.addRow(name,
			fmt.Sprintf("%d", s.NumNodes),
			fmt.Sprintf("%d", s.NumEdges),
			dir,
			fmt.Sprintf("%.1f", s.AvgDegree),
			string(s.Distribution),
			fmt.Sprintf("%d", s.ApproxDiameter))
	}
	return "TABLE I: GRAPHS USED FOR EVALUATION\n" + t.String()
}

// TableII renders the framework-attribute table.
func TableII(frameworks []kernel.Framework) string {
	keys := []string{"Type", "Internal Graph Data", "Programming Abstraction", "Execution Synchronization", "Intended Users"}
	t := &table{header: append([]string{"Attribute"}, names(frameworks)...)}
	for _, key := range keys {
		row := []string{key}
		for _, f := range frameworks {
			attr := "-"
			if d, ok := f.(kernel.Describer); ok {
				if v := d.Attributes()[key]; v != "" {
					attr = v
				}
			}
			row = append(row, attr)
		}
		t.addRow(row...)
	}
	return "TABLE II: MAIN ATTRIBUTES OF FRAMEWORKS CONSIDERED\n" + t.String()
}

// TableIII renders the per-kernel algorithm-choice table.
func TableIII(frameworks []kernel.Framework) string {
	t := &table{header: append([]string{"Task"}, names(frameworks)...)}
	pick := func(a kernel.Algorithms, k core.Kernel) string {
		switch k {
		case core.BFS:
			return a.BFS
		case core.SSSP:
			return a.SSSP
		case core.CC:
			return a.CC
		case core.PR:
			return a.PR
		case core.BC:
			return a.BC
		default:
			return a.TC
		}
	}
	for _, k := range core.Kernels {
		row := []string{string(k)}
		for _, f := range frameworks {
			alg := "-"
			if d, ok := f.(kernel.Describer); ok {
				alg = pick(d.Algorithms(), k)
			}
			row = append(row, alg)
		}
		t.addRow(row...)
	}
	return "TABLE III: ALGORITHMS USED BY EACH FRAMEWORK\n" + t.String()
}

// TableIV renders the fastest-time table: per kernel x graph x mode, the
// minimum time over all frameworks and which framework achieved it (the
// paper encodes the winner as the cell color; text gets the name).
func TableIV(results []core.Result, graphs []string) string {
	var b strings.Builder
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		t := &table{header: append([]string{"Kernel"}, graphs...)}
		any := false
		for _, k := range core.Kernels {
			row := []string{string(k)}
			for _, gname := range graphs {
				bestSec := -1.0
				winner := ""
				for _, r := range results {
					// Non-OK cells (crashed, timed out, failed verification)
					// have no time; they can't win or even place.
					if r.Kernel != k || r.Graph != gname || r.Mode != mode || r.Status != core.OK || !r.Verified || r.Seconds < 0 {
						continue
					}
					if bestSec < 0 || r.Seconds < bestSec {
						bestSec, winner = r.Seconds, r.Framework
					}
				}
				if bestSec < 0 {
					row = append(row, "—")
				} else {
					any = true
					row = append(row, fmt.Sprintf("%.4fs [%s]", bestSec, winner))
				}
			}
			t.addRow(row...)
		}
		if any {
			fmt.Fprintf(&b, "TABLE IV (%s): FASTEST TIMES (winner in brackets)\n%s\n", mode, t)
		}
	}
	return b.String()
}

// TableV renders the speedup heat map: per framework, kernel and graph, the
// ratio of the GAP reference time to the framework's time as a percentage
// (100% = parity, >100% faster than GAP), for each mode present.
func TableV(results []core.Result, graphs []string) string {
	speedups := core.SpeedupVsReference(results)
	frameworkOrder := []string{}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Framework != core.ReferenceName && !seen[r.Framework] {
			seen[r.Framework] = true
			frameworkOrder = append(frameworkOrder, r.Framework)
		}
	}
	var b strings.Builder
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		t := &table{header: append([]string{"Framework", "Kernel"}, graphs...)}
		any := false
		for _, fw := range frameworkOrder {
			for _, k := range core.Kernels {
				row := []string{fw, string(k)}
				found := false
				for _, gname := range graphs {
					key := fw + "|" + string(k) + "|" + gname + "|" + mode.String()
					if ratio, ok := speedups[key]; ok {
						row = append(row, fmt.Sprintf("%.2f%%", 100*ratio))
						found = true
					} else {
						row = append(row, "-")
					}
				}
				if found {
					t.addRow(row...)
					any = true
				}
			}
		}
		if any {
			fmt.Fprintf(&b, "TABLE V (%s): SPEEDUP OVER GAP REFERENCE (100%% = parity)\n%s\n", mode, t)
		}
	}
	return b.String()
}

// CSV renders all results as comma-separated values, the complete-data
// export the paper links in a footnote.
func CSV(results []core.Result) string {
	rows := append([]core.Result(nil), results...)
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		if a.Graph != b.Graph {
			return a.Graph < b.Graph
		}
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		return a.Framework < b.Framework
	})
	var b strings.Builder
	// The sync_* columns expose each cell's synchronization structure from
	// the mode's machine (regions launched, inline regions, barrier shares,
	// dynamic chunks, mean region width) — the per-cell observables behind
	// the paper's §V-A launch-overhead analysis. The status column is the
	// fault-model rollup (DESIGN.md §9); non-OK cells leave their timing
	// columns empty rather than exporting -1 or partial-garbage seconds.
	b.WriteString("mode,graph,kernel,framework,status,best_seconds,avg_seconds,stddev_seconds,trials,retries,verified,error," +
		"sync_workers,sync_regions,sync_serial_regions,sync_barriers,sync_chunks,sync_effective_workers\n")
	for _, r := range rows {
		best, avg, sd := "", "", ""
		if r.Status == core.OK && r.Seconds >= 0 {
			best = fmt.Sprintf("%.6f", r.Seconds)
			avg = fmt.Sprintf("%.6f", r.AvgSeconds)
			sd = fmt.Sprintf("%.6f", r.StdDev)
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s,%s,%s,%d,%d,%t,%q,%d,%d,%d,%d,%d,%.2f\n",
			r.Mode, r.Graph, r.Kernel, r.Framework, r.Status, best, avg, sd, r.Trials, r.Retries, r.Verified, r.Err,
			r.Sync.Workers, r.Sync.Regions, r.Sync.SerialRegions, r.Sync.Barriers, r.Sync.Chunks, r.Sync.EffectiveWorkers)
	}
	return b.String()
}

func names(frameworks []kernel.Framework) []string {
	out := make([]string, len(frameworks))
	for i, f := range frameworks {
		out[i] = f.Name()
	}
	return out
}

// MarkdownTableV renders the speedup heat map as a GitHub-flavored Markdown
// table (one table per mode), for posting results in issues and PRs the way
// CONTRIBUTING.md asks contributors to.
func MarkdownTableV(results []core.Result, graphs []string) string {
	speedups := core.SpeedupVsReference(results)
	frameworkOrder := []string{}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Framework != core.ReferenceName && !seen[r.Framework] {
			seen[r.Framework] = true
			frameworkOrder = append(frameworkOrder, r.Framework)
		}
	}
	var b strings.Builder
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		var rows []string
		for _, fw := range frameworkOrder {
			for _, k := range core.Kernels {
				cells := []string{fw, string(k)}
				found := false
				for _, gname := range graphs {
					key := fw + "|" + string(k) + "|" + gname + "|" + mode.String()
					if ratio, ok := speedups[key]; ok {
						cells = append(cells, fmt.Sprintf("%.2f%%", 100*ratio))
						found = true
					} else {
						cells = append(cells, "—")
					}
				}
				if found {
					rows = append(rows, "| "+strings.Join(cells, " | ")+" |")
				}
			}
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(&b, "### Table V (%s): speedup over the GAP reference\n\n", mode)
		b.WriteString("| Framework | Kernel | " + strings.Join(graphs, " | ") + " |\n")
		b.WriteString("|---|---|" + strings.Repeat("---|", len(graphs)) + "\n")
		for _, row := range rows {
			b.WriteString(row + "\n")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarkdownTableIV renders the fastest-time table as Markdown.
func MarkdownTableIV(results []core.Result, graphs []string) string {
	var b strings.Builder
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		var rows []string
		for _, k := range core.Kernels {
			cells := []string{string(k)}
			found := false
			for _, gname := range graphs {
				bestSec := -1.0
				winner := ""
				for _, r := range results {
					if r.Kernel != k || r.Graph != gname || r.Mode != mode || r.Status != core.OK || !r.Verified || r.Seconds < 0 {
						continue
					}
					if bestSec < 0 || r.Seconds < bestSec {
						bestSec, winner = r.Seconds, r.Framework
					}
				}
				if bestSec < 0 {
					cells = append(cells, "—")
				} else {
					cells = append(cells, fmt.Sprintf("%.4fs (**%s**)", bestSec, winner))
					found = true
				}
			}
			if found {
				rows = append(rows, "| "+strings.Join(cells, " | ")+" |")
			}
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(&b, "### Table IV (%s): fastest times\n\n", mode)
		b.WriteString("| Kernel | " + strings.Join(graphs, " | ") + " |\n")
		b.WriteString("|---|" + strings.Repeat("---|", len(graphs)) + "\n")
		for _, row := range rows {
			b.WriteString(row + "\n")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

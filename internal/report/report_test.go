package report_test

import (
	"strings"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/report"
)

func sampleResults() []core.Result {
	return []core.Result{
		{Framework: "GAP", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Baseline, Seconds: 0.2, AvgSeconds: 0.25, Trials: 2, Verified: true},
		{Framework: "GKC", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Baseline, Seconds: 0.1, AvgSeconds: 0.1, Trials: 2, Verified: true},
		{Framework: "Galois", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Baseline, Seconds: 0.4, AvgSeconds: 0.4, Trials: 2, Verified: true},
		{Framework: "GAP", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Optimized, Seconds: 0.15, AvgSeconds: 0.15, Trials: 2, Verified: true},
		{Framework: "GKC", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Optimized, Seconds: 0.3, AvgSeconds: 0.3, Trials: 2, Status: core.VerifyFailed, Verified: false, Err: "boom"},
		{Framework: "GraphIt", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Baseline, Seconds: -1, Trials: 2, Status: core.TimedOut, Verified: false, Err: "deadline (1s) exceeded"},
	}
}

func TestTableI(t *testing.T) {
	stats := []graph.Stats{{
		NumNodes: 10, NumEdges: 20, Directed: true, AvgDegree: 2.0,
		Distribution: graph.DistPower, ApproxDiameter: 3,
	}}
	out := report.TableI([]string{"Kron"}, stats)
	for _, want := range []string{"Kron", "10", "20", "power", "TABLE I"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIAndIII(t *testing.T) {
	fws := core.Frameworks()
	ii := report.TableII(fws)
	for _, want := range []string{"GAP", "SuiteSparse", "Galois", "GraphIt", "GKC", "NWGraph", "sparse linear algebra"} {
		if !strings.Contains(ii, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	iii := report.TableIII(fws)
	for _, want := range []string{"Direction-optimizing", "Delta-stepping", "Afforest", "Label Propagation", "FastSV", "Shiloach-Vishkin", "Gauss-Seidel", "Jacobi", "Brandes", "Lee & Low"} {
		if !strings.Contains(iii, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestTableIVPicksWinnerAndSkipsUnverified(t *testing.T) {
	out := report.TableIV(sampleResults(), []string{"Kron"})
	if !strings.Contains(out, "0.1000s [GKC]") {
		t.Errorf("baseline winner wrong:\n%s", out)
	}
	// Optimized: GKC failed verification, so GAP wins despite being slower
	// than the unverified time.
	if !strings.Contains(out, "0.1500s [GAP]") {
		t.Errorf("unverified result not excluded:\n%s", out)
	}
}

func TestTableVRatios(t *testing.T) {
	out := report.TableV(sampleResults(), []string{"Kron"})
	if !strings.Contains(out, "200.00%") { // GKC baseline: 0.2/0.1
		t.Errorf("missing GKC 200%%:\n%s", out)
	}
	if !strings.Contains(out, "50.00%") { // Galois baseline: 0.2/0.4
		t.Errorf("missing Galois 50%%:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := report.CSV(sampleResults())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("CSV has %d lines, want header+6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "mode,graph,kernel,framework,status") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(out, `"boom"`) {
		t.Error("CSV missing quoted error")
	}
	// Non-OK cells export their status and empty timing columns, never -1.
	if !strings.Contains(out, "GraphIt,TimedOut,,,,") {
		t.Errorf("timed-out cell should have status + empty timings:\n%s", out)
	}
	if strings.Contains(out, "-1.000000") {
		t.Errorf("CSV leaked a -1 sentinel second:\n%s", out)
	}
}

func TestTableIVAndVSkipNonOKCells(t *testing.T) {
	// A timed-out cell must neither win Table IV nor contribute a Table V
	// ratio, even if a bogus positive time is attached.
	res := []core.Result{
		{Framework: "GAP", Kernel: core.PR, Graph: "Road", Mode: kernel.Baseline, Seconds: 0.2, Trials: 1, Verified: true},
		{Framework: "GKC", Kernel: core.PR, Graph: "Road", Mode: kernel.Baseline, Seconds: 0.0001, Trials: 1, Status: core.TimedOut, Verified: false, Err: "deadline"},
	}
	out := report.TableIV(res, []string{"Road"})
	if !strings.Contains(out, "[GAP]") || strings.Contains(out, "[GKC]") {
		t.Errorf("Table IV let a non-OK cell place:\n%s", out)
	}
	if sp := core.SpeedupVsReference(res); len(sp) != 0 {
		t.Errorf("speedups from non-OK cells: %v", sp)
	}
}

func TestMarkdownRenderers(t *testing.T) {
	res := sampleResults()
	md := report.MarkdownTableV(res, []string{"Kron"})
	for _, want := range []string{"### Table V (Baseline)", "| Framework | Kernel | Kron |", "200.00%", "|---|---|---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown Table V missing %q:\n%s", want, md)
		}
	}
	md4 := report.MarkdownTableIV(res, []string{"Kron"})
	for _, want := range []string{"### Table IV (Baseline)", "(**GKC**)"} {
		if !strings.Contains(md4, want) {
			t.Errorf("markdown Table IV missing %q:\n%s", want, md4)
		}
	}
	// Unverified Optimized GKC excluded: GAP must win that cell.
	if !strings.Contains(md4, "0.1500s (**GAP**)") {
		t.Errorf("markdown Table IV kept unverified result:\n%s", md4)
	}
}

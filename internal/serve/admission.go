package serve

// admission.go is the daemon's overload-shedding front door. The failure
// mode it exists for is the classic one: under sustained overload an
// unbounded queue converts every query into a deadline miss — throughput
// stays flat while latency diverges. Admission control refuses excess work
// *immediately* (RESOURCE_EXHAUSTED, microseconds, no budget spent) so the
// queries that are admitted still meet their deadlines. Two independent
// gates compose:
//
//   - a token bucket bounds the sustained admission rate (Rate qps with
//     Burst depth), smoothing arrival spikes into the configured capacity;
//   - a queue-depth watermark bounds admitted-but-unfinished queries to the
//     pool size plus a short lease queue, so even an unlimited-rate server
//     never builds a deep backlog.

import (
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig tunes the shedding gates. The zero value admits
// everything up to the queue watermark default.
type AdmissionConfig struct {
	// Rate is the sustained admission rate in queries/sec; 0 disables the
	// token bucket (watermark-only shedding).
	Rate float64
	// Burst is the token-bucket depth — how many queries above the
	// sustained rate a spike may land before shedding starts. Default:
	// max(1, Rate) (one second of headroom).
	Burst int
	// MaxQueue bounds admitted queries waiting for a machine lease beyond
	// the pool size: inflight is capped at poolSize + MaxQueue. Default 2x
	// the pool size; negative means 0 (no queue — pool-size cap exactly).
	MaxQueue int
}

// admitVerdict classifies one admission decision.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	// admitShedRate: token bucket empty — offered rate above capacity.
	admitShedRate
	// admitShedQueue: inflight watermark reached — backlog at its bound.
	admitShedQueue
)

// admission is the runtime state of the two gates.
type admission struct {
	cfg         AdmissionConfig
	maxInflight int64
	inflight    atomic.Int64

	// Token bucket state, guarded by mu: refilled lazily on each Admit from
	// the elapsed wall time, so there is no background filler goroutine.
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newAdmission resolves the config defaults against the pool size.
func newAdmission(cfg AdmissionConfig, poolSize int) *admission {
	if cfg.Burst <= 0 {
		cfg.Burst = 1
		if cfg.Rate > 1 {
			cfg.Burst = int(cfg.Rate)
		}
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = 2 * poolSize
	} else if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		cfg:         cfg,
		maxInflight: int64(poolSize + maxQueue),
		tokens:      float64(cfg.Burst),
		last:        time.Now(),
	}
}

// Admit runs both gates; on admitOK the caller owns one inflight slot and
// must call Done exactly once when the query finishes (any code).
//
// The watermark gate runs first: a queue-shed query must not consume a rate
// token, or sustained queue shedding would depress the admitted rate below
// the configured Rate. The optimistic increment with rollback keeps the
// watermark exact under concurrent admits without a lock; a rate-shed rolls
// the slot back too.
func (a *admission) Admit() admitVerdict {
	if a.inflight.Add(1) > a.maxInflight {
		a.inflight.Add(-1)
		return admitShedQueue
	}
	if a.cfg.Rate > 0 && !a.takeToken() {
		a.inflight.Add(-1)
		return admitShedRate
	}
	return admitOK
}

// Done releases the inflight slot taken by a successful Admit.
func (a *admission) Done() { a.inflight.Add(-1) }

// Inflight reports the admitted, unfinished query count.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// takeToken refills the bucket from elapsed time and takes one token.
func (a *admission) takeToken() bool {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if dt := now.Sub(a.last).Seconds(); dt > 0 {
		a.tokens += dt * a.cfg.Rate
		if burst := float64(a.cfg.Burst); a.tokens > burst {
			a.tokens = burst
		}
		a.last = now
	}
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

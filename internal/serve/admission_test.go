package serve

import (
	"testing"
	"time"
)

func TestAdmissionWatermark(t *testing.T) {
	// Pool of 2 with MaxQueue -1 (no queue): exactly 2 in flight.
	a := newAdmission(AdmissionConfig{MaxQueue: -1}, 2)
	if got := a.Admit(); got != admitOK {
		t.Fatalf("first Admit = %v, want admitOK", got)
	}
	if got := a.Admit(); got != admitOK {
		t.Fatalf("second Admit = %v, want admitOK", got)
	}
	if got := a.Admit(); got != admitShedQueue {
		t.Fatalf("third Admit = %v, want admitShedQueue", got)
	}
	a.Done()
	if got := a.Admit(); got != admitOK {
		t.Fatalf("Admit after Done = %v, want admitOK", got)
	}
	if got := a.Inflight(); got != 2 {
		t.Errorf("Inflight = %d, want 2", got)
	}
}

func TestAdmissionDefaultQueueIsTwicePool(t *testing.T) {
	a := newAdmission(AdmissionConfig{}, 2)
	// poolSize + 2*poolSize = 6 slots.
	for i := 0; i < 6; i++ {
		if got := a.Admit(); got != admitOK {
			t.Fatalf("Admit %d = %v, want admitOK", i, got)
		}
	}
	if got := a.Admit(); got != admitShedQueue {
		t.Fatalf("Admit 7 = %v, want admitShedQueue", got)
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	// Rate 10/s, burst 2: two immediate admits, then rate-shed until refill.
	a := newAdmission(AdmissionConfig{Rate: 10, Burst: 2, MaxQueue: 100}, 4)
	if got := a.Admit(); got != admitOK {
		t.Fatalf("Admit 1 = %v", got)
	}
	if got := a.Admit(); got != admitOK {
		t.Fatalf("Admit 2 = %v", got)
	}
	if got := a.Admit(); got != admitShedRate {
		t.Fatalf("Admit 3 = %v, want admitShedRate", got)
	}
	// ~100ms refills one token at 10/s.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if a.Admit() == admitOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionBucketCapsAtBurst(t *testing.T) {
	a := newAdmission(AdmissionConfig{Rate: 1000, Burst: 3, MaxQueue: 100}, 4)
	time.Sleep(20 * time.Millisecond) // would refill 20 tokens uncapped
	okCount := 0
	for i := 0; i < 10; i++ {
		if a.Admit() == admitOK {
			okCount++
		}
	}
	// Burst 3 plus at most a few refilled during the loop itself.
	if okCount < 3 || okCount > 6 {
		t.Errorf("admitted %d of 10 rapid-fire, want ~burst (3..6)", okCount)
	}
}

func TestAdmissionQueueShedDoesNotBurnRateToken(t *testing.T) {
	// Watermark 1 (pool 1, no queue), burst 3, negligible refill. The single
	// slot fills, then sustained queue shedding must not drain the token
	// bucket — otherwise the effective admitted rate drops below Rate.
	a := newAdmission(AdmissionConfig{Rate: 0.001, Burst: 3, MaxQueue: -1}, 1)
	if got := a.Admit(); got != admitOK {
		t.Fatalf("Admit 1 = %v, want admitOK", got)
	}
	for i := 0; i < 5; i++ {
		if got := a.Admit(); got != admitShedQueue {
			t.Fatalf("Admit at full watermark = %v, want admitShedQueue", got)
		}
	}
	// Two of the three burst tokens must remain: the queue sheds were free.
	a.Done()
	if got := a.Admit(); got != admitOK {
		t.Fatalf("Admit after Done = %v, want admitOK (queue sheds burned rate tokens)", got)
	}
	a.Done()
	if got := a.Admit(); got != admitOK {
		t.Fatalf("third token gone = %v, want admitOK", got)
	}
}

func TestAdmissionRateZeroDisablesBucket(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxQueue: 100}, 4)
	for i := 0; i < 50; i++ {
		if got := a.Admit(); got != admitOK {
			t.Fatalf("Admit %d = %v with no rate limit", i, got)
		}
	}
}

package serve

// breaker.go quarantines (framework, kernel) pairs that keep losing
// machines. A kernel that ignores cancellation costs the pool a machine per
// attempt (Lease.Abandon builds a replacement, but the stuck workers burn
// CPU until the kernel returns — GraphBLAST-style backends under adversarial
// frontiers can stall this way deterministically, see PAPERS.md). Without a
// breaker, every arriving query for the bad pair pays the full deadline +
// grace and costs another machine; with one, the pair fails fast
// (UNAVAILABLE, microseconds) after Threshold consecutive abandonments,
// until a probe query proves it healthy again.
//
// State machine per pair:
//
//	closed ── Threshold consecutive abandonments ──> open
//	open ── Cooldown elapsed, next query becomes the probe ──> half-open
//	half-open ── probe succeeds ──> closed (consecutive reset)
//	half-open ── probe abandoned or fails ──> open (cooldown restarts)
//	half-open ── probe dropped before running (shed, lease failure) ──> open
//
// Every path out of Allow's probe=true must report one of OnSuccess,
// OnFailure, OnAbandon, or ResetProbe — a probe that exits without reporting
// would wedge the circuit half-open (refusing everything) forever.
//
// While open (and while a probe is in flight), all other queries for the
// pair are refused without touching the pool.

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the quarantine. The zero value disables it.
type BreakerConfig struct {
	// Threshold is the consecutive-abandonment count that opens the
	// circuit; 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open circuit waits before letting one probe
	// query through. Default 5s.
	Cooldown time.Duration
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 5 * time.Second
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen // one probe in flight; everyone else fails fast
)

// breaker is one (framework, kernel) pair's circuit.
type breaker struct {
	mu          sync.Mutex
	state       int
	consecutive int       // abandonments since the last success
	openedAt    time.Time // last transition to open
}

// breakerSet is the per-pair circuit map.
type breakerSet struct {
	cfg   BreakerConfig
	mu    sync.Mutex
	pairs map[string]*breaker
	opens atomic.Int64 // lifetime open transitions, for Stats
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg, pairs: make(map[string]*breaker)}
}

func (s *breakerSet) pair(framework, kernelName string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := framework + "|" + kernelName
	b, ok := s.pairs[key]
	if !ok {
		b = &breaker{}
		s.pairs[key] = b
	}
	return b
}

// Opens reports the lifetime count of open transitions.
func (s *breakerSet) Opens() int64 { return s.opens.Load() }

// Allow decides whether a query for the pair may proceed. probe is true when
// the query is the half-open probe — its outcome decides the circuit's fate.
// With the breaker disabled every query is allowed.
func (s *breakerSet) Allow(framework, kernelName string) (ok, probe bool) {
	if s.cfg.Threshold <= 0 {
		return true, false
	}
	b := s.pair(framework, kernelName)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if time.Since(b.openedAt) >= s.cfg.cooldown() {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// OnSuccess records a completed query. Only the half-open probe's success
// closes the circuit — a slow non-probe query admitted before the circuit
// opened must not short-circuit the cooldown/probe protocol when it finally
// completes. A success in the closed state resets the consecutive count.
func (s *breakerSet) OnSuccess(framework, kernelName string, probe bool) {
	if s.cfg.Threshold <= 0 {
		return
	}
	b := s.pair(framework, kernelName)
	b.mu.Lock()
	switch {
	case probe && b.state == breakerHalfOpen:
		b.state = breakerClosed
		b.consecutive = 0
	case b.state == breakerClosed:
		b.consecutive = 0
	}
	b.mu.Unlock()
}

// ResetProbe returns a half-open circuit to open after its probe was dropped
// before the kernel ran (admission shed, pool draining, lease failure). The
// probe proved nothing about the pair's health, so the cooldown restarts and
// a later query gets to be the probe — without this, a dropped probe would
// leave the circuit half-open refusing every query until process restart.
func (s *breakerSet) ResetProbe(framework, kernelName string) {
	if s.cfg.Threshold <= 0 {
		return
	}
	b := s.pair(framework, kernelName)
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

// OnAbandon records a machine lost to the pair. It opens the circuit when
// the consecutive count reaches the threshold — or immediately when the
// abandoned query was the half-open probe.
func (s *breakerSet) OnAbandon(framework, kernelName string, probe bool) {
	if s.cfg.Threshold <= 0 {
		return
	}
	b := s.pair(framework, kernelName)
	b.mu.Lock()
	b.consecutive++
	if probe || b.consecutive >= s.cfg.Threshold {
		if b.state != breakerOpen {
			s.opens.Add(1)
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

// OnFailure records a non-abandonment failure (panic, deadline). It does not
// count toward the quarantine threshold — those faults cost a retry, not a
// machine — but a failed probe reopens the circuit.
func (s *breakerSet) OnFailure(framework, kernelName string, probe bool) {
	if s.cfg.Threshold <= 0 || !probe {
		return
	}
	b := s.pair(framework, kernelName)
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

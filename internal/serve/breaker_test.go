package serve

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterConsecutiveAbandonments(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 3, Cooldown: time.Hour})
	for i := 0; i < 2; i++ {
		if ok, _ := s.Allow("GAP", "BFS"); !ok {
			t.Fatalf("closed breaker refused query %d", i)
		}
		s.OnAbandon("GAP", "BFS", false)
	}
	if ok, _ := s.Allow("GAP", "BFS"); !ok {
		t.Fatal("breaker open before threshold")
	}
	s.OnAbandon("GAP", "BFS", false) // third consecutive: opens
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("breaker still allowing after threshold abandonments")
	}
	if got := s.Opens(); got != 1 {
		t.Errorf("Opens = %d, want 1", got)
	}
	// Other pairs are unaffected.
	if ok, _ := s.Allow("GAP", "CC"); !ok {
		t.Error("unrelated pair quarantined")
	}
	if ok, _ := s.Allow("Galois", "BFS"); !ok {
		t.Error("unrelated framework quarantined")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	s.OnAbandon("GAP", "BFS", false)
	s.OnSuccess("GAP", "BFS", false)
	s.OnAbandon("GAP", "BFS", false)
	if ok, _ := s.Allow("GAP", "BFS"); !ok {
		t.Fatal("non-consecutive abandonments opened the breaker")
	}
}

func TestBreakerProbeAndClose(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond})
	s.OnAbandon("GAP", "BFS", false) // opens
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("open breaker allowed a query inside the cooldown")
	}
	time.Sleep(40 * time.Millisecond)
	ok, probe := s.Allow("GAP", "BFS")
	if !ok || !probe {
		t.Fatalf("after cooldown: ok=%v probe=%v, want the probe through", ok, probe)
	}
	// While the probe is in flight nobody else gets through.
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("half-open breaker allowed a second query during the probe")
	}
	s.OnSuccess("GAP", "BFS", true) // probe succeeded: closed
	if ok, probe := s.Allow("GAP", "BFS"); !ok || probe {
		t.Fatalf("after successful probe: ok=%v probe=%v, want plain allow", ok, probe)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond})
	s.OnAbandon("GAP", "BFS", false)
	time.Sleep(40 * time.Millisecond)
	if ok, probe := s.Allow("GAP", "BFS"); !ok || !probe {
		t.Fatalf("probe not admitted: ok=%v probe=%v", ok, probe)
	}
	s.OnFailure("GAP", "BFS", true) // probe panicked: reopen, cooldown restarts
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("breaker closed after a failed probe")
	}
	time.Sleep(40 * time.Millisecond)
	if ok, probe := s.Allow("GAP", "BFS"); !ok || !probe {
		t.Fatalf("no second probe after the restarted cooldown: ok=%v probe=%v", ok, probe)
	}
	s.OnAbandon("GAP", "BFS", true) // abandoned probe also reopens
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("breaker closed after an abandoned probe")
	}
}

func TestBreakerDroppedProbeResetsToOpen(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond})
	s.OnAbandon("GAP", "BFS", false) // opens
	time.Sleep(40 * time.Millisecond)
	if ok, probe := s.Allow("GAP", "BFS"); !ok || !probe {
		t.Fatalf("probe not admitted: ok=%v probe=%v", ok, probe)
	}
	// The probe is shed before running (admission, drain, lease failure):
	// ResetProbe must return the circuit to open — not leave it wedged
	// half-open refusing everything forever.
	s.ResetProbe("GAP", "BFS")
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("circuit closed by a probe that never ran")
	}
	time.Sleep(40 * time.Millisecond)
	if ok, probe := s.Allow("GAP", "BFS"); !ok || !probe {
		t.Fatalf("no new probe after the restarted cooldown: ok=%v probe=%v", ok, probe)
	}
	// ResetProbe on a non-half-open circuit is a no-op: the in-flight probe
	// still decides it.
	s.ResetProbe("GAP", "CC")
	if ok, _ := s.Allow("GAP", "CC"); !ok {
		t.Fatal("ResetProbe disturbed a closed circuit")
	}
}

func TestBreakerNonProbeSuccessDoesNotClose(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	s.OnAbandon("GAP", "BFS", false) // opens
	// A slow query admitted before the circuit opened completes now: it must
	// not close the circuit and bypass the cooldown/probe protocol.
	s.OnSuccess("GAP", "BFS", false)
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("non-probe success closed an open circuit")
	}
}

func TestBreakerNonProbeSuccessDoesNotCloseHalfOpen(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond})
	s.OnAbandon("GAP", "BFS", false)
	time.Sleep(40 * time.Millisecond)
	if ok, probe := s.Allow("GAP", "BFS"); !ok || !probe {
		t.Fatalf("probe not admitted: ok=%v probe=%v", ok, probe)
	}
	// While the probe is in flight, a concurrent pre-open query completing
	// must not close the circuit on the probe's behalf.
	s.OnSuccess("GAP", "BFS", false)
	if ok, _ := s.Allow("GAP", "BFS"); ok {
		t.Fatal("non-probe success closed a half-open circuit")
	}
	s.OnSuccess("GAP", "BFS", true) // the probe itself closes it
	if ok, probe := s.Allow("GAP", "BFS"); !ok || probe {
		t.Fatalf("after successful probe: ok=%v probe=%v, want plain allow", ok, probe)
	}
}

func TestBreakerNonProbeFailureDoesNotCount(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	for i := 0; i < 5; i++ {
		s.OnFailure("GAP", "BFS", false) // panics/timeouts without abandonment
	}
	if ok, _ := s.Allow("GAP", "BFS"); !ok {
		t.Fatal("non-abandonment failures opened the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	s := newBreakerSet(BreakerConfig{})
	for i := 0; i < 10; i++ {
		s.OnAbandon("GAP", "BFS", false)
	}
	if ok, probe := s.Allow("GAP", "BFS"); !ok || probe {
		t.Fatalf("disabled breaker interfered: ok=%v probe=%v", ok, probe)
	}
	if got := s.Opens(); got != 0 {
		t.Errorf("disabled breaker counted %d opens", got)
	}
}

package serve

// Chaos-wired e2e: the daemon serves a real framework wrapped in the chaos
// injector (internal/chaos) and must survive the full fault matrix — shed,
// retry, quarantine, keep serving, never crash, never leak a machine lease.
// Faults arm only under `go test -tags=chaos`; without the tag every test
// here skips (same convention as internal/core's chaos e2e).

import (
	"strings"
	"testing"
	"time"

	"gapbench/internal/chaos"
	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/testutil"
)

// chaosHang bounds how long injected Hang faults ignore cancellation, so
// drains can reap the abandoned machines within test deadlines.
const chaosHang = 200 * time.Millisecond

func requireChaos(t *testing.T) {
	t.Helper()
	if !chaos.Enabled() {
		t.Skip("needs -tags=chaos")
	}
}

func startChaosServer(t *testing.T, cfg Config, in *core.Input, faults ...*chaos.Fault) (*Server, string) {
	t.Helper()
	inj := chaos.Wrap(core.FrameworkByName("GAP"), 1, faults...)
	return startServer(t, cfg, in, inj)
}

func TestChaosServePanicRetryRecovers(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startChaosServer(t, Config{PoolSize: 1, Workers: 1}, in,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Panic, Once: true})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1})
	if resp.Code != CodeOK || resp.Retries != 1 {
		t.Fatalf("once-panic query: code=%s retries=%d err=%q, want OK after 1 retry", resp.Code, resp.Retries, resp.Error)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestChaosServeDeterministicPanicKeepsServing(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startChaosServer(t, Config{PoolSize: 1, Workers: 1}, in,
		&chaos.Fault{Kernel: "PR", Mode: chaos.Panic})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "PR"})
	if resp.Code != CodeInternal || !strings.Contains(resp.Error, "chaos: injected panic") {
		t.Fatalf("panicking PR: %+v", resp)
	}
	// The daemon survives and the untargeted kernels keep serving.
	for _, req := range []Request{{Kernel: "BFS", Source: 1}, {Kernel: "CC", Vertex: 1}} {
		if r := c.do(req); r.Code != CodeOK {
			t.Fatalf("%s after panic: %+v", req.Kernel, r)
		}
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestChaosServeStallTimesOutMachineKept(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startChaosServer(t, Config{PoolSize: 1, Workers: 1, Grace: 100 * time.Millisecond}, in,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Stall})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 50})
	if resp.Code != CodeDeadlineExceeded {
		t.Fatalf("stalled query: %+v", resp)
	}
	if got := srv.Pool().Abandoned(); got != 0 {
		t.Errorf("cooperative stall abandoned %d machines", got)
	}
	if r := c.do(Request{Kernel: "CC", Vertex: 1}); r.Code != CodeOK {
		t.Fatalf("CC after stall: %+v", r)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestChaosServeHangAbandonsHealsAndDrainsClean(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startChaosServer(t, Config{PoolSize: 1, Workers: 1, Grace: 40 * time.Millisecond}, in,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Hang, HangExtra: chaosHang})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 40})
	if resp.Code != CodeDeadlineExceeded || !strings.Contains(resp.Error, "abandoned") {
		t.Fatalf("hung query: %+v", resp)
	}
	if got := srv.Pool().Abandoned(); got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
	// Self-healed pool keeps serving while the hung kernel sleeps on.
	if r := c.do(Request{Kernel: "CC", Vertex: 1}); r.Code != CodeOK {
		t.Fatalf("CC after hang: %+v", r)
	}
	// The drain must reap the abandoned machine and prove zero leases leaked
	// (panics under -tags=servecheck, errors otherwise — nil means clean).
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown after hang: %v", err)
	}
	if got := srv.Pool().Outstanding(); got != 0 {
		t.Errorf("outstanding leases after drain = %d", got)
	}
}

func TestChaosServeBreakerOpensAndProbeCloses(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	// Three one-shot Hang faults: exactly three consecutive abandonments,
	// then the framework is healthy again — the breaker must open at the
	// third and close on the post-cooldown probe.
	srv, sock := startChaosServer(t, Config{
		PoolSize: 1, Workers: 1,
		Grace:   30 * time.Millisecond,
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 150 * time.Millisecond},
	}, in,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Hang, Once: true, HangExtra: chaosHang},
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Hang, Once: true, HangExtra: chaosHang},
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Hang, Once: true, HangExtra: chaosHang},
	)
	c := dial(t, sock)

	for i := 0; i < 3; i++ {
		resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 40})
		if resp.Code != CodeDeadlineExceeded {
			t.Fatalf("hang %d: %+v", i, resp)
		}
	}
	waitFor(t, func() bool { return srv.StatsSnapshot().BreakerOpens == 1 })

	// Open: fail-fast, no machine spent.
	resp := c.do(Request{Kernel: "BFS", Source: 1})
	if resp.Code != CodeUnavailable || !strings.Contains(resp.Error, "quarantined") {
		t.Fatalf("quarantined query: %+v", resp)
	}
	abandonedBefore := srv.Pool().Abandoned()

	// Cooldown, then the probe (faults exhausted → clean run) closes it.
	time.Sleep(180 * time.Millisecond)
	if r := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 2000}); r.Code != CodeOK {
		t.Fatalf("probe query: %+v", r)
	}
	if r := c.do(Request{Kernel: "BFS", Source: 2, BudgetMS: 2000}); r.Code != CodeOK {
		t.Fatalf("query after close: %+v", r)
	}
	st := srv.StatsSnapshot()
	if st.BreakerOpens != 1 {
		t.Errorf("breaker_opens = %d, want 1 (no reopen after recovery)", st.BreakerOpens)
	}
	if got := srv.Pool().Abandoned(); got != abandonedBefore {
		t.Errorf("quarantine/probe cost %d extra machines", got-abandonedBefore)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestChaosServeCorruptGraphTrippedByGraphguard(t *testing.T) {
	requireChaos(t)
	if !graph.GuardEnabled() {
		t.Skip("needs -tags=chaos,graphguard (seal checks are no-ops otherwise)")
	}
	// Dedicated input: the injected corruption permanently poisons the
	// shared CSR, so this graph must not be reused by other tests.
	in, err := core.LoadInput(core.GraphSpec{Name: "Urand", Scale: 6, Seed: 3, Delta: 16, SourceSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = in.Close() })
	srv, sock := startChaosServer(t, Config{PoolSize: 1, Workers: 1}, in,
		&chaos.Fault{Kernel: "CC", Mode: chaos.CorruptGraph, Once: true})
	c := dial(t, sock)

	// The sandboxed seal check catches the mutation as a panic — the client
	// sees INTERNAL naming the corrupted array, never a silent wrong answer.
	resp := c.do(Request{Kernel: "CC", Vertex: 1})
	if resp.Code != CodeInternal || !strings.Contains(resp.Error, "graphguard") {
		t.Fatalf("corrupt-graph query: %+v", resp)
	}
	// The daemon survives; the corrupted graph keeps tripping the seal (the
	// guard refuses to serve poisoned data), which is the correct behavior.
	if r := c.do(Request{Kernel: "BFS", Source: 1}); r.Code != CodeInternal {
		t.Fatalf("BFS on corrupted graph: %+v, want INTERNAL (seal still broken)", r)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

package serve

// check.go is the servecheck runtime sanitizer, mirroring grbcheck
// (internal/grb) and graphguard (internal/graph): the assertion code is
// always compiled — so gapvet's tag-unaware loader sees one consistent parse
// — but armed only when the binary is built with -tags=servecheck. Armed, a
// pool drain that finds outstanding machine leases panics naming the count:
// a leaked lease is a machine no future query can ever use, the serving-layer
// analogue of a lost goroutine, and exactly the invariant the static
// lease-return rule proves per-function. The runtime check closes the loop
// across functions, retries, and fault paths the static rule cannot see.

import "fmt"

// checkEnabled is armed by the init in check_servecheck.go under
// -tags=servecheck.
var checkEnabled = false

// CheckEnabled reports whether the binary was built with the servecheck tag.
// Tests that need the armed assertion skip themselves when it is false.
func CheckEnabled() bool { return checkEnabled }

// leaseLeakCheck asserts the outstanding-lease count is zero at drain,
// panicking under -tags=servecheck. Unarmed it does nothing; the pool then
// reports the leak as an ordinary drain error.
func leaseLeakCheck(outstanding int64) {
	if checkEnabled && outstanding != 0 {
		panic(fmt.Sprintf("servecheck: %d machine lease(s) still outstanding at drain — every Acquire must reach Release or Abandon", outstanding))
	}
}

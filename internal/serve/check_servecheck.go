//go:build servecheck

package serve

// Building with -tags=servecheck arms the lease-leak drain assertion; see
// check.go.
func init() { checkEnabled = true }

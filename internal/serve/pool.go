package serve

// pool.go is the bounded machine-lease pool at the heart of the daemon's
// scheduler. The suite runner (internal/core) already knows how to abandon a
// par.Machine whose kernel ignores cancellation and lazily build a fresh one;
// this pool is that idea extracted into a multi-tenant form: a fixed number
// of persistent worker pools, leased one query at a time, with self-healing
// replacement when a lease is abandoned. The invariants are sharp enough to
// enforce twice — statically by the gapvet `lease-return` rule (every Acquire
// must reach Release or Abandon on all paths, including panic paths) and at
// runtime by the servecheck drain assertion (outstanding leases must be zero
// when the pool drains, see check.go).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gapbench/internal/par"
)

// Pool errors returned by Acquire.
var (
	// ErrPoolDraining: the pool is shutting down; no new leases.
	ErrPoolDraining = errors.New("serve: pool draining")
	// ErrAcquireCancelled: the caller's token fired while waiting for an
	// idle machine (deadline passed or client disconnected in the queue).
	ErrAcquireCancelled = errors.New("serve: cancelled while waiting for a machine lease")
)

// acquirePollInterval is how often a queued Acquire re-checks its
// cancellation token while blocked on the idle channel. Tokens are
// poll-based (they have no channel to select on), so queue waits trade a
// sub-millisecond reaction latency for zero per-token goroutines.
const acquirePollInterval = 500 * time.Microsecond

// Pool is a bounded set of persistent par.Machines leased to queries one at
// a time. All methods are safe for concurrent use.
type Pool struct {
	size    int
	workers int
	// idle holds machines not currently leased. Capacity == size: every
	// live machine is either idle (in the channel) or leased (counted by
	// outstanding), so drain can account for all of them.
	idle chan *par.Machine

	outstanding atomic.Int64 // leases currently held
	abandoned   atomic.Int64 // lifetime abandonments
	// reapers tracks the goroutines joining abandoned machines: each one
	// blocks in Machine.Close until the stuck kernel finally returns, so
	// the pool's drain can prove no worker goroutine outlives it (when the
	// stuck kernels are bounded, as chaos faults are).
	reapers  sync.WaitGroup
	draining atomic.Bool
}

// NewPool builds a pool of size machines with workersPer workers each.
// size < 1 means 1.
func NewPool(size, workersPer int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size, workers: workersPer, idle: make(chan *par.Machine, size)}
	for i := 0; i < size; i++ {
		p.idle <- par.NewMachine(workersPer)
	}
	return p
}

// Size returns the pool's machine count; Workers the per-machine width.
func (p *Pool) Size() int    { return p.size }
func (p *Pool) Workers() int { return p.workers }

// Outstanding reports the leases currently held.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Abandoned reports the lifetime count of machines lost to stuck kernels.
func (p *Pool) Abandoned() int64 { return p.abandoned.Load() }

// Lease is one held machine. Exactly one of Release or Abandon must be
// called, exactly once, on every lease — on all paths, including panic paths
// (defer it). The gapvet lease-return rule enforces this shape statically;
// a second settlement panics here.
type Lease struct {
	p       *Pool
	m       *par.Machine
	settled atomic.Bool
}

// Machine returns the leased machine. The holder installs its query token
// with SetCancel and runs kernel regions on it.
func (l *Lease) Machine() *par.Machine { return l.m }

// Acquire leases an idle machine, blocking until one frees up, the token
// fires (ErrAcquireCancelled), or the pool drains (ErrPoolDraining). The
// wait is the admission-bounded lease queue: admission control guarantees it
// is short, and the query's deadline budget keeps ticking while queued.
func (p *Pool) Acquire(tok *par.CancelToken) (*Lease, error) {
	timer := time.NewTimer(acquirePollInterval)
	defer timer.Stop()
	for {
		if p.draining.Load() {
			return nil, ErrPoolDraining
		}
		select {
		case m := <-p.idle:
			p.outstanding.Add(1)
			return &Lease{p: p, m: m}, nil
		case <-timer.C:
			if tok.Cancelled() {
				return nil, ErrAcquireCancelled
			}
			timer.Reset(acquirePollInterval)
		}
	}
}

// Release returns a healthy machine to the idle set (clearing its cancel
// token first, so the next lease starts clean). During drain the machine is
// closed instead of re-idled.
func (l *Lease) Release() {
	if !l.settled.CompareAndSwap(false, true) {
		panic("serve: lease settled twice (Release after Release/Abandon)")
	}
	l.m.SetCancel(nil)
	if l.p.draining.Load() {
		l.m.Close()
		l.p.outstanding.Add(-1)
		return
	}
	select {
	case l.p.idle <- l.m:
	default:
		// Cannot happen while the accounting holds (idle capacity == size
		// and this machine was out of the channel), but close rather than
		// block or leak if it ever does.
		l.m.Close()
	}
	l.p.outstanding.Add(-1)
}

// Abandon drops a machine whose kernel ignored cancellation past the grace
// period: a replacement machine enters the idle set immediately (other
// tenants never see a shrunken pool), and a reaper goroutine joins the stuck
// machine's workers whenever the kernel finally returns. The stuck kernel
// keeps the old machine's token installed, so its future regions still drain
// fast if it ever starts polling.
func (l *Lease) Abandon() {
	if !l.settled.CompareAndSwap(false, true) {
		panic("serve: lease settled twice (Abandon after Release/Abandon)")
	}
	l.p.abandoned.Add(1)
	m := l.m
	l.p.reapers.Add(1)
	go func() {
		defer l.p.reapers.Done()
		m.Close()
	}()
	if !l.p.draining.Load() {
		select {
		case l.p.idle <- par.NewMachine(l.p.workers):
		default:
			// Idle already full (a concurrent drain emptied outstanding);
			// skip the replacement rather than leak a machine.
		}
	}
	l.p.outstanding.Add(-1)
}

// Drain shuts the pool down: no new leases are granted, machines are closed
// as they come back, and Drain blocks until every lease is settled and every
// abandoned-machine reaper has joined its workers — or the timeout passes.
// On success the outstanding-lease counter is provably zero; under the
// servecheck build tag a leak panics (the runtime half of the lease-return
// invariant), otherwise it is returned as an error for the caller to report.
func (p *Pool) Drain(timeout time.Duration) error {
	p.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		select {
		case m := <-p.idle:
			m.Close()
			continue
		default:
		}
		if p.outstanding.Load() == 0 && len(p.idle) == 0 {
			break
		}
		if time.Now().After(deadline) {
			n := p.outstanding.Load()
			leaseLeakCheck(n)
			return fmt.Errorf("serve: drain timed out with %d lease(s) still outstanding", n)
		}
		time.Sleep(acquirePollInterval)
	}
	leaseLeakCheck(p.outstanding.Load())

	// All leases settled; wait out the reapers (bounded when the stuck
	// kernels are — chaos Hangs always return eventually).
	done := make(chan struct{})
	go func() {
		p.reapers.Wait()
		close(done)
	}()
	remaining := time.Until(deadline)
	if remaining < 0 {
		remaining = 0
	}
	reapTimer := time.NewTimer(remaining)
	defer reapTimer.Stop()
	select {
	case <-done:
		return nil
	case <-reapTimer.C:
		return errors.New("serve: drain timed out waiting for abandoned machines to be reaped (kernels still stuck)")
	}
}

package serve

import (
	"errors"
	"testing"
	"time"

	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

func TestPoolAcquireReleaseCycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p := NewPool(2, 1)
	defer func() {
		if err := p.Drain(2 * time.Second); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}()

	l1, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Outstanding(); got != 2 {
		t.Errorf("Outstanding = %d, want 2", got)
	}
	if l1.Machine() == l2.Machine() {
		t.Error("two concurrent leases share one machine")
	}

	// A third acquire must block until a release, and then get a machine.
	got := make(chan *Lease, 1)
	go func() {
		l, err := p.Acquire(nil)
		if err != nil {
			t.Error(err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("Acquire returned with the pool exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	select {
	case l3 := <-got:
		l3.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
	l2.Release()
	if got := p.Outstanding(); got != 0 {
		t.Errorf("Outstanding after releases = %d, want 0", got)
	}
}

func TestPoolAcquireCancelledWhileQueued(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p := NewPool(1, 1)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	tok := par.NewDeadlineToken(20 * time.Millisecond)
	if _, err := p.Acquire(tok); !errors.Is(err, ErrAcquireCancelled) {
		t.Fatalf("queued Acquire with fired token: err = %v, want ErrAcquireCancelled", err)
	}
	l.Release()
	if err := p.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPoolAbandonSelfHeals(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p := NewPool(1, 3)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Abandon()
	if got := p.Abandoned(); got != 1 {
		t.Errorf("Abandoned = %d, want 1", got)
	}
	// The replacement must be available immediately and inherit the pool's
	// worker width.
	done := make(chan *Lease, 1)
	go func() {
		l2, err := p.Acquire(nil)
		if err != nil {
			t.Error(err)
		}
		done <- l2
	}()
	select {
	case l2 := <-done:
		if got := l2.Machine().Stats().Workers; got != 3 {
			t.Errorf("replacement machine workers = %d, want 3", got)
		}
		l2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("no replacement machine after Abandon")
	}
	if err := p.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain after abandon: %v", err)
	}
}

func TestPoolDoubleSettlePanics(t *testing.T) {
	p := NewPool(1, 1)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	defer func() {
		if recover() == nil {
			t.Error("second Release did not panic")
		}
		if err := p.Drain(2 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	l.Release()
}

func TestPoolDrainRefusesNewLeases(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p := NewPool(1, 1)
	if err := p.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire(nil); !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("Acquire on drained pool: err = %v, want ErrPoolDraining", err)
	}
}

func TestPoolDrainReportsLeakedLease(t *testing.T) {
	if CheckEnabled() {
		t.Skip("servecheck armed: a leaked lease panics instead of erroring")
	}
	p := NewPool(1, 1)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("Drain with an outstanding lease reported success")
	}
	l.Release() // settle so workers are joined (Release during drain closes)
	if err := p.Drain(time.Second); err != nil {
		t.Fatalf("drain after settling: %v", err)
	}
}

func TestServecheckPanicsOnLeakedLease(t *testing.T) {
	if !CheckEnabled() {
		t.Skip("needs -tags=servecheck")
	}
	p := NewPool(1, 1)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed servecheck did not panic on a leaked lease at drain")
			}
		}()
		_ = p.Drain(50 * time.Millisecond)
	}()
	l.Release()
	if err := p.Drain(time.Second); err != nil {
		t.Fatalf("drain after settling: %v", err)
	}
}

func TestPoolReleaseDuringDrainCloses(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	p := NewPool(2, 1)
	l, err := p.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- p.Drain(2 * time.Second) }()
	time.Sleep(10 * time.Millisecond) // let Drain set the flag and start pulling idle
	l.Release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := p.Outstanding(); got != 0 {
		t.Errorf("Outstanding = %d, want 0", got)
	}
}

package serve

// proto.go defines the wire protocol of the gapd daemon: line-delimited JSON
// over a TCP or unix-socket connection. One request line in, one response
// line out, in request order — a connection is a serial query stream, and
// concurrency comes from concurrent connections (load drivers open one per
// simulated client). The shape is deliberately minimal — a serving layer for
// resident graphs, not an RPC framework.

import (
	"fmt"
	"strings"
)

// Ops accepted on a connection. An empty Op means OpQuery.
const (
	// OpQuery runs one kernel query (the default when Op is empty).
	OpQuery = "query"
	// OpGraphs lists the graphs the daemon is serving (name, vertex and
	// edge counts) — load drivers use it to size their source distributions.
	OpGraphs = "graphs"
	// OpStats reports the server's lifetime counters.
	OpStats = "stats"
	// OpPing is a liveness check; the response carries code OK and nothing
	// else.
	OpPing = "ping"
)

// Request is one client request line.
type Request struct {
	// ID is an opaque client token echoed on the response, so a client may
	// pipeline many queries over one connection.
	ID string `json:"id,omitempty"`
	// Op selects the operation; empty means "query".
	Op string `json:"op,omitempty"`

	// Kernel names the query type: "BFS" (from Source), "SSSP" (from
	// Source, optionally to Target), "PR" (top-K ranks), "CC" (component of
	// Vertex).
	Kernel string `json:"kernel,omitempty"`
	// Graph names the served graph to query.
	Graph string `json:"graph,omitempty"`
	// Framework names the backend; empty means the server's default (the
	// first registered framework).
	Framework string `json:"framework,omitempty"`

	// Source is the BFS/SSSP source vertex.
	Source int64 `json:"source,omitempty"`
	// Target, when set, asks SSSP for the distance to one vertex.
	Target *int64 `json:"target,omitempty"`
	// Vertex is the CC component-of vertex.
	Vertex int64 `json:"vertex,omitempty"`
	// K is the PR top-K size (default 10, capped by the server).
	K int `json:"k,omitempty"`

	// BudgetMS is the client's requested deadline budget in milliseconds.
	// Zero means the server default; the server clamps to its maximum.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// Code classifies a response, modeled on the gRPC canonical codes so load
// drivers and dashboards can treat shed/deadline/fault responses uniformly.
type Code string

// The response codes.
const (
	// CodeOK: the query completed within budget.
	CodeOK Code = "OK"
	// CodeInvalidArgument: the request itself is malformed (unknown kernel,
	// out-of-range vertex, bad JSON field).
	CodeInvalidArgument Code = "INVALID_ARGUMENT"
	// CodeNotFound: the named graph or framework is not served here.
	CodeNotFound Code = "NOT_FOUND"
	// CodeResourceExhausted: admission control shed the query — token
	// bucket empty or the lease queue past its watermark. Immediate, before
	// any work; the client may retry against a less loaded window.
	CodeResourceExhausted Code = "RESOURCE_EXHAUSTED"
	// CodeDeadlineExceeded: the query's deadline budget ran out — waiting
	// for a lease or mid-kernel (the cooperative-cancellation drain).
	CodeDeadlineExceeded Code = "DEADLINE_EXCEEDED"
	// CodeUnavailable: the server is draining, or the (framework, kernel)
	// pair is quarantined by its circuit breaker. Fail-fast: no budget was
	// spent.
	CodeUnavailable Code = "UNAVAILABLE"
	// CodeInternal: the kernel panicked (and retries, if any, panicked
	// too). The error carries the panic value.
	CodeInternal Code = "INTERNAL"
)

// Shed reports whether the code is a deliberate load-shedding refusal
// (admission or quarantine/drain fail-fast) rather than a query failure. The
// check.sh smoke tier's "zero non-OK non-shed responses" gate is exactly
// !ok && !shed.
func (c Code) Shed() bool {
	return c == CodeResourceExhausted || c == CodeUnavailable
}

// Response is one server response line.
type Response struct {
	ID   string `json:"id,omitempty"`
	Code Code   `json:"code"`
	// Error is the human-readable failure detail for non-OK codes.
	Error string `json:"error,omitempty"`

	// Kernel/Graph/Framework echo the query coordinates (query responses
	// only), so response logs are self-describing.
	Kernel    string `json:"kernel,omitempty"`
	Graph     string `json:"graph,omitempty"`
	Framework string `json:"framework,omitempty"`

	// Micros is the end-to-end service time in microseconds: admission to
	// response, queue wait and retries included. KernelMicros is the final
	// attempt's kernel execution alone.
	Micros       int64 `json:"micros,omitempty"`
	KernelMicros int64 `json:"kernel_micros,omitempty"`
	// Retries counts extra attempts spent on transient faults.
	Retries int `json:"retries,omitempty"`

	// Result carries the kernel-specific payload for OK query responses.
	Result *QueryResult `json:"result,omitempty"`
	// Graphs answers OpGraphs.
	Graphs []GraphInfo `json:"graphs,omitempty"`
	// Stats answers OpStats.
	Stats *Stats `json:"stats,omitempty"`
}

// QueryResult is the kernel-specific result payload. Only the fields of the
// queried kernel are set.
type QueryResult struct {
	// Reached is the number of vertices reached (BFS, SSSP).
	Reached int64 `json:"reached,omitempty"`
	// Dist is the SSSP distance to Target (-1 when unreachable); nil when
	// no target was asked for.
	Dist *int64 `json:"dist,omitempty"`
	// TopK are the K highest-ranked vertices (PR), best first.
	TopK []RankEntry `json:"topk,omitempty"`
	// Component is the CC label of the queried vertex; Size the number of
	// vertices sharing it.
	Component int64 `json:"component,omitempty"`
	Size      int64 `json:"size,omitempty"`
}

// RankEntry is one PR top-K entry.
type RankEntry struct {
	V     int64   `json:"v"`
	Score float64 `json:"score"`
}

// GraphInfo describes one served graph.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int64  `json:"nodes"`
	Edges int64  `json:"edges"`
}

// Stats is the server's counter snapshot, answered on OpStats. All counters
// are lifetime totals; Inflight and OutstandingLeases are instantaneous.
type Stats struct {
	// Accepted counts queries past admission; Completed those answered
	// (any code after admission); OK the successful subset.
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	OK        int64 `json:"ok"`
	// ShedRate/ShedQueue count admission refusals by cause; BreakerShed
	// quarantine fail-fasts; DrainShed refusals while draining.
	ShedRate    int64 `json:"shed_rate"`
	ShedQueue   int64 `json:"shed_queue"`
	BreakerShed int64 `json:"breaker_shed"`
	DrainShed   int64 `json:"drain_shed"`
	// Panics/Timeouts/Retries/Abandoned count fault-path events; Abandoned
	// is machines lost to kernels that ignored cancellation.
	Panics    int64 `json:"panics"`
	Timeouts  int64 `json:"timeouts"`
	Retries   int64 `json:"retries"`
	Abandoned int64 `json:"abandoned"`
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens int64 `json:"breaker_opens"`
	// Inflight is the number of admitted, unfinished queries right now;
	// OutstandingLeases the machine leases currently held.
	Inflight          int64 `json:"inflight"`
	OutstandingLeases int64 `json:"outstanding_leases"`
}

// validOps is the accepted Op set, for error messages.
var validOps = []string{OpQuery, OpGraphs, OpStats, OpPing}

// normalizeOp resolves the request's op, defaulting empty to query.
func normalizeOp(op string) (string, error) {
	switch op {
	case "", OpQuery:
		return OpQuery, nil
	case OpGraphs, OpStats, OpPing:
		return op, nil
	}
	return "", fmt.Errorf("unknown op %q (want one of %s)", op, strings.Join(validOps, ", "))
}

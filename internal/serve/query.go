package serve

// query.go executes one admitted query: validate, thread the deadline budget
// into a chained cancel token, lease a machine, run the kernel sandboxed
// (panic recovery, graphguard seal checks, grace-bounded abandonment), retry
// transient failures with backoff, and report the outcome in the Status
// taxonomy — to the client as a Code, to the breaker as a health event, and
// (optionally) to the suite journal as a core.Result.

import (
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// queryPlan is a validated query request, ready to execute.
type queryPlan struct {
	req    Request
	in     *core.Input
	f      kernel.Framework
	fwName string
	k      core.Kernel
	src    graph.NodeID
	target graph.NodeID
	vertex graph.NodeID
	topk   int
	budget time.Duration
	seed   uint64 // per-query jitter stream
}

// servedKernels are the query kernels gapd exposes: the point-query shapes
// of the suite (BFS-from-source, SSSP, PR-topk, CC-component-of). BC and TC
// are whole-graph batch kernels with no per-query parameter worth serving.
var servedKernels = []core.Kernel{core.BFS, core.SSSP, core.PR, core.CC}

// plan validates a query request into a queryPlan, or returns the response
// to send instead.
func (s *Server) plan(req Request) (*queryPlan, *Response) {
	fail := func(code Code, format string, args ...any) (*queryPlan, *Response) {
		return nil, &Response{ID: req.ID, Code: code, Error: fmt.Sprintf(format, args...)}
	}

	k := core.Kernel(strings.ToUpper(strings.TrimSpace(req.Kernel)))
	served := false
	for _, sk := range servedKernels {
		if k == sk {
			served = true
			break
		}
	}
	if !served {
		return fail(CodeInvalidArgument, "unknown kernel %q (served: BFS, SSSP, PR, CC)", req.Kernel)
	}

	graphName := req.Graph
	if graphName == "" && len(s.graphOrder) == 1 {
		graphName = s.graphOrder[0]
	}
	in, ok := s.graphs[graphName]
	if !ok {
		return fail(CodeNotFound, "graph %q not served (try op=graphs)", req.Graph)
	}

	fwName := req.Framework
	if fwName == "" {
		fwName = s.defaultFW
	}
	f, ok := s.frameworks[fwName]
	if !ok {
		return fail(CodeNotFound, "framework %q not served", req.Framework)
	}

	p := &queryPlan{req: req, in: in, f: f, fwName: fwName, k: k}
	n := int64(in.Graph.NumNodes())
	switch k {
	case core.BFS, core.SSSP:
		if req.Source < 0 || req.Source >= n {
			return fail(CodeInvalidArgument, "source %d out of range [0,%d)", req.Source, n)
		}
		p.src = graph.NodeID(req.Source)
		p.target = -1
		if req.Target != nil {
			if *req.Target < 0 || *req.Target >= n {
				return fail(CodeInvalidArgument, "target %d out of range [0,%d)", *req.Target, n)
			}
			p.target = graph.NodeID(*req.Target)
		}
	case core.PR:
		p.topk = req.K
		if p.topk <= 0 {
			p.topk = 10
		}
		if p.topk > 100 {
			p.topk = 100
		}
		if int64(p.topk) > n {
			p.topk = int(n)
		}
	case core.CC:
		if req.Vertex < 0 || req.Vertex >= n {
			return fail(CodeInvalidArgument, "vertex %d out of range [0,%d)", req.Vertex, n)
		}
		p.vertex = graph.NodeID(req.Vertex)
	}

	p.budget = s.cfg.defaultBudget()
	if req.BudgetMS > 0 {
		p.budget = time.Duration(req.BudgetMS) * time.Millisecond
	}
	if maxB := s.cfg.maxBudget(); p.budget > maxB {
		p.budget = maxB
	}
	return p, nil
}

// query is the full lifecycle of one query request.
func (s *Server) query(req Request, connTok *par.CancelToken) Response {
	start := time.Now()
	p, errResp := s.plan(req)
	if errResp != nil {
		errResp.Micros = time.Since(start).Microseconds()
		return *errResp
	}
	p.seed = splitmix64(s.cfg.Seed ^ s.queryID.Add(1))

	// Shed gates, cheapest first. Each refusal costs microseconds and no
	// pool time — the whole point of shedding over queuing.
	if s.draining.Load() {
		s.c.drainShed.Add(1)
		return Response{ID: req.ID, Code: CodeUnavailable, Error: "server draining",
			Kernel: string(p.k), Graph: p.in.Spec.Name, Framework: p.fwName,
			Micros: time.Since(start).Microseconds()}
	}
	allowed, probe := s.breakers.Allow(p.fwName, string(p.k))
	if !allowed {
		s.c.breakerShed.Add(1)
		return Response{ID: req.ID, Code: CodeUnavailable,
			Error:  fmt.Sprintf("%s %s quarantined (circuit open; retry after cooldown)", p.fwName, p.k),
			Kernel: string(p.k), Graph: p.in.Spec.Name, Framework: p.fwName,
			Micros: time.Since(start).Microseconds()}
	}
	if verdict := s.adm.Admit(); verdict != admitOK {
		// A shed probe must not leave the circuit wedged half-open: reset it
		// to open so the cooldown restarts and a later query re-probes.
		if probe {
			s.breakers.ResetProbe(p.fwName, string(p.k))
		}
		msg := "admission rate exceeded"
		if verdict == admitShedQueue {
			s.c.shedQueue.Add(1)
			msg = "queue depth watermark reached"
		} else {
			s.c.shedRate.Add(1)
		}
		return Response{ID: req.ID, Code: CodeResourceExhausted, Error: msg,
			Kernel: string(p.k), Graph: p.in.Spec.Name, Framework: p.fwName,
			Micros: time.Since(start).Microseconds()}
	}
	defer s.adm.Done()
	s.c.accepted.Add(1)
	defer s.c.completed.Add(1)

	resp := s.execute(p, connTok, probe)
	resp.ID = req.ID
	resp.Kernel = string(p.k)
	resp.Graph = p.in.Spec.Name
	resp.Framework = p.fwName
	resp.Micros = time.Since(start).Microseconds()
	return resp
}

// attemptOut is the raw result of one sandboxed attempt, in the suite's
// Status taxonomy.
type attemptOut struct {
	status  core.Status
	seconds float64
	err     string
	stack   string
	result  *QueryResult
}

// execute runs the retry loop under the query's deadline budget. probe marks
// the query as the breaker's half-open probe — its outcome decides whether
// the circuit closes.
func (s *Server) execute(p *queryPlan, connTok *par.CancelToken, probe bool) Response {
	// The budget token is the composition satellite in action: the machine
	// polls ONE token that fires on either the per-query deadline or the
	// client connection going away (par.Chain). It spans the whole query —
	// lease waits, attempts, and backoff all spend the same budget.
	deadline := time.Now().Add(p.budget)
	qTok := par.Chain(connTok, par.NewDeadlineToken(p.budget))

	var records []core.TrialRecord
	var out attemptOut
	retries := 0
	policy := s.cfg.Retry.policy()
	for attempt := 0; ; attempt++ {
		var abandoned bool
		var err error
		out, abandoned, err = s.attempt(p, qTok, deadline)
		if err != nil {
			// Lease acquisition failed — nothing ran, nothing to retry. A
			// probe that never ran proved nothing: reset its circuit to open
			// (cooldown restarts) instead of leaving it wedged half-open.
			if probe {
				s.breakers.ResetProbe(p.fwName, string(p.k))
			}
			s.journalQuery(p, records, core.TimedOut, retries, err.Error())
			if err == ErrPoolDraining {
				s.c.drainShed.Add(1)
				return Response{Code: CodeUnavailable, Error: "server draining", Retries: retries}
			}
			s.c.timeouts.Add(1)
			return Response{Code: CodeDeadlineExceeded,
				Error:   fmt.Sprintf("budget (%v) exhausted waiting for a machine lease", p.budget),
				Retries: retries}
		}
		records = append(records, core.TrialRecord{
			Trial: 0, Attempt: attempt,
			Status: out.status, Seconds: out.seconds,
			Err: out.err, Stack: out.stack,
		})
		if abandoned {
			s.breakers.OnAbandon(p.fwName, string(p.k), probe)
		}
		if out.status == core.OK {
			s.breakers.OnSuccess(p.fwName, string(p.k), probe)
			break
		}
		if !abandoned {
			s.breakers.OnFailure(p.fwName, string(p.k), probe)
		}
		if attempt >= policy.MaxRetries || policy.RetryOn == nil || !policy.RetryOn(out.status) {
			break
		}
		// Backoff before the retry, bounded by the remaining budget; a fired
		// token (budget gone, client gone) ends the query instead.
		d := s.cfg.Retry.backoff(retries, p.seed)
		if time.Until(deadline) <= d || !sleepInterruptible(d, qTok) {
			break
		}
		retries++
		s.c.retries.Add(1)
	}

	s.journalQuery(p, records, out.status, retries, out.err)
	switch out.status {
	case core.OK:
		s.c.ok.Add(1)
		return Response{Code: CodeOK, Retries: retries, Result: out.result,
			KernelMicros: int64(out.seconds * 1e6)}
	case core.TimedOut:
		s.c.timeouts.Add(1)
		return Response{Code: CodeDeadlineExceeded, Error: out.err, Retries: retries}
	default: // Panicked
		s.c.panics.Add(1)
		return Response{Code: CodeInternal, Error: out.err, Retries: retries}
	}
}

// attempt runs one sandboxed kernel attempt on a leased machine. The lease is
// settled on every path — Release normally, Abandon when the kernel ignored
// its fired token past the grace period — via the deferred closure the gapvet
// lease-return rule checks for. The bool reports abandonment; a non-nil error
// means no lease was obtained (pool draining, budget gone while queued).
func (s *Server) attempt(p *queryPlan, tok *par.CancelToken, deadline time.Time) (attemptOut, bool, error) {
	lease, err := s.pool.Acquire(tok)
	if err != nil {
		return attemptOut{}, false, err
	}
	abandoned := false
	defer func() {
		if abandoned {
			lease.Abandon()
		} else {
			lease.Release()
		}
	}()

	m := lease.Machine()
	m.SetCancel(tok)
	opt := kernel.Options{
		Workers:        s.pool.Workers(),
		Mode:           kernel.Baseline,
		Delta:          p.in.Spec.Delta,
		Machine:        m,
		Cancel:         tok,
		UndirectedView: p.in.Undirected,
	}

	// Capture the graph views before the sandbox starts: an abandoned
	// sandbox may wake long after this query (and even the Input) is gone,
	// and must not re-read Input fields concurrently with a Close.
	g, und := p.in.Graph, p.in.Undirected
	done := make(chan attemptOut, 1) // buffered: an abandoned sandbox still exits
	go func() {
		out := attemptOut{status: core.OK}
		defer func() {
			if pv := recover(); pv != nil {
				out.status = core.Panicked
				out.err = fmt.Sprintf("%s %s on %s: panic: %v", p.fwName, p.k, p.in.Spec.Name, pv)
				out.stack = trimStack(debug.Stack())
				out.result = nil
			}
			done <- out
		}()
		start := time.Now()
		out.result = runKernel(p, g, opt)
		out.seconds = time.Since(start).Seconds()
		// graphguard (armed under -tags=graphguard): the shared CSRs must
		// survive every query byte-identical — one corrupting kernel must not
		// poison answers for every later client. A mutation panics here,
		// inside the sandbox, as a Panicked attempt naming the array.
		g.MustCheckSeal()
		und.MustCheckSeal()
		if tok.Cancelled() {
			out.status = core.TimedOut
			out.err = fmt.Sprintf("%s %s on %s: deadline budget (%v) exceeded", p.fwName, p.k, p.in.Spec.Name, p.budget)
			out.result = nil
		}
	}()

	remaining := time.Until(deadline)
	if remaining < 0 {
		remaining = 0
	}
	expire := time.NewTimer(remaining)
	defer expire.Stop()
	select {
	case out := <-done:
		return out, false, nil
	case <-expire.C:
		tok.Cancel() // idempotent with the deadline; also covers clock skew on the chained token
		grace := time.NewTimer(s.cfg.grace())
		defer grace.Stop()
		select {
		case out := <-done:
			return out, false, nil
		case <-grace.C:
			// The kernel is ignoring the token: give up the machine. The
			// sandbox goroutine keeps the stuck machine (token installed, so
			// it still drains fast if the kernel ever polls) and the pool
			// self-heals with a replacement.
			abandoned = true
			return attemptOut{
				status: core.TimedOut,
				err: fmt.Sprintf("%s %s on %s: kernel ignored cancellation for %v past the %v budget; machine abandoned",
					p.fwName, p.k, p.in.Spec.Name, s.cfg.grace(), p.budget),
			}, true, nil
		}
	}
}

// trimStack keeps the frames that identify a panic and drops scheduler noise
// (same convention as the suite runner's trial records).
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	const maxLines = 24
	if len(lines) > maxLines {
		lines = append(lines[:maxLines], "... (stack trimmed)")
	}
	return strings.Join(lines, "\n")
}

// runKernel dispatches the planned kernel and reduces its full output to the
// query's answer. The reduction runs inside the sandbox on purpose: reducing
// garbage output (a corrupted kernel result) may panic, and that is the
// kernel's fault to report, not the daemon's to crash on. g is passed in
// (not read off p.in) so the sandbox holds no Input-field reads.
func runKernel(p *queryPlan, g *graph.Graph, opt kernel.Options) *QueryResult {
	switch p.k {
	case core.BFS:
		parent := p.f.BFS(g, p.src, opt)
		res := &QueryResult{}
		for _, pv := range parent {
			if pv >= 0 {
				res.Reached++
			}
		}
		return res
	case core.SSSP:
		dist := p.f.SSSP(g, p.src, opt)
		res := &QueryResult{}
		for _, d := range dist {
			if d != kernel.Inf {
				res.Reached++
			}
		}
		if p.target >= 0 && p.target < graph.NodeID(len(dist)) {
			d := int64(-1) // the documented "unreachable" sentinel
			if dist[p.target] != kernel.Inf {
				d = int64(dist[p.target])
			}
			res.Dist = &d
		}
		return res
	case core.PR:
		ranks := p.f.PR(g, opt)
		return &QueryResult{TopK: topK(ranks, p.topk)}
	default: // core.CC — plan admits nothing else
		labels := p.f.CC(g, opt)
		res := &QueryResult{Component: int64(labels[p.vertex])}
		want := labels[p.vertex]
		for _, l := range labels {
			if l == want {
				res.Size++
			}
		}
		return res
	}
}

// topK selects the k highest-scoring vertices by insertion into a small
// sorted window — O(n·k) worst case but k ≤ 100 and most vertices fail the
// threshold test in O(1), so no full n-element sort is paid per query.
func topK(scores []float64, k int) []RankEntry {
	if k > len(scores) {
		k = len(scores)
	}
	top := make([]RankEntry, 0, k)
	for v, sc := range scores {
		if len(top) == k && sc <= top[k-1].Score {
			continue
		}
		i := len(top)
		if i < k {
			top = append(top, RankEntry{})
		} else {
			i = k - 1
		}
		for i > 0 && top[i-1].Score < sc {
			top[i] = top[i-1]
			i--
		}
		top[i] = RankEntry{V: int64(v), Score: sc}
	}
	return top
}

// journalQuery appends the query outcome to the suite journal (when
// configured) as a core.Result — one "cell" with one trial, CellID-keyed like
// any batch result, its attempts as TrialRecords. Journal write failures are
// logged, never surfaced to the client: losing a ledger line must not fail a
// query that already ran.
func (s *Server) journalQuery(p *queryPlan, records []core.TrialRecord, status core.Status, retries int, errMsg string) {
	if s.cfg.JournalPath == "" {
		return
	}
	res := core.Result{
		Framework: p.fwName,
		Kernel:    p.k,
		Graph:     p.in.Spec.Name,
		Mode:      kernel.Baseline,
		Status:    status,
		Seconds:   -1,
		Trials:    1,
		Retries:   retries,
		Verified:  status == core.OK,
		GraphFile: p.in.File,
	}
	if p.in.Graph != nil {
		res.GraphEpoch = p.in.Graph.Epoch()
	}
	if status == core.OK && len(records) > 0 {
		last := records[len(records)-1]
		res.Seconds = last.Seconds
		res.AvgSeconds = last.Seconds
	} else {
		res.Err = errMsg
	}
	res.TrialRecords = records
	s.journalMu.Lock()
	err := core.AppendJournal(s.cfg.JournalPath, res)
	s.journalMu.Unlock()
	if err != nil {
		s.logf("serve: journal: %v", err)
	}
}

package serve

// retry.go is the serving-layer retry policy, reusing the suite runner's
// Status taxonomy and core.RetryPolicy shape (internal/core): a query attempt
// ends in exactly one Status, and the policy decides which statuses are worth
// another attempt inside the same deadline budget. The serving default
// retries Panicked only — a panic can be a transient race, but TimedOut means
// the query's budget is already spent (the budget token IS the attempt
// deadline), so re-running could only time out again.
//
// Between attempts the query backs off exponentially with deterministic
// jitter: base*2^attempt capped at BackoffCap, then jittered into
// [d/2, d) by a splitmix64 stream seeded from the server seed and the query
// id. Deterministic jitter keeps chaos tests reproducible while still
// decorrelating the retry storms of concurrent queries (each query id lands
// at a different point in the window).

import (
	"time"

	"gapbench/internal/core"
)

// RetryConfig tunes attempt retries. The zero value uses the serving
// defaults described on the fields.
type RetryConfig struct {
	// Policy decides which attempt statuses are retried and how many times.
	// Nil means the serving default: one retry, Panicked only.
	Policy *core.RetryPolicy
	// BackoffBase is the pre-jitter delay before the first retry; each
	// further retry doubles it. Default 10ms.
	BackoffBase time.Duration
	// BackoffCap bounds the pre-jitter delay. Default 250ms.
	BackoffCap time.Duration
}

// serveRetryPolicy is the default Policy: Panicked is possibly transient and
// worth one more attempt; everything else is deterministic or budget-bound.
func serveRetryPolicy() *core.RetryPolicy {
	return &core.RetryPolicy{
		MaxRetries: 1,
		RetryOn:    func(s core.Status) bool { return s == core.Panicked },
	}
}

func (c RetryConfig) policy() *core.RetryPolicy {
	if c.Policy != nil {
		return c.Policy
	}
	return serveRetryPolicy()
}

func (c RetryConfig) base() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 10 * time.Millisecond
}

func (c RetryConfig) cap() time.Duration {
	if c.BackoffCap > 0 {
		return c.BackoffCap
	}
	return 250 * time.Millisecond
}

// backoff computes the jittered delay before retry number retry (0-based:
// the delay between attempt 0 and attempt 1 is retry 0). seed individualizes
// the jitter stream per query.
func (c RetryConfig) backoff(retry int, seed uint64) time.Duration {
	d := c.base()
	limit := c.cap()
	for i := 0; i < retry && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	// Jitter into [d/2, d): full-window jitter would let a retry fire
	// immediately (no backoff at all); half-window keeps a floor while still
	// spreading concurrent retries.
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(seed + uint64(retry))
	return time.Duration(half + int64(j%uint64(half)))
}

// splitmix64 is the jitter PRNG — tiny, seedable, allocation-free, the same
// generator the chaos injector uses for deterministic corruption.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepInterruptible sleeps for d, returning early (false) if tok fires. The
// retry loop uses it so a client disconnect or budget expiry during backoff
// does not hold the inflight slot for the rest of the delay.
func sleepInterruptible(d time.Duration, tok interface{ Cancelled() bool }) bool {
	const step = time.Millisecond
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if tok.Cancelled() {
			return false
		}
		remaining := time.Until(deadline)
		if remaining > step {
			remaining = step
		}
		time.Sleep(remaining)
	}
	return !tok.Cancelled()
}

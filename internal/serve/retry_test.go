package serve

import (
	"testing"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/par"
)

func TestBackoffDoublesAndCaps(t *testing.T) {
	cfg := RetryConfig{BackoffBase: 10 * time.Millisecond, BackoffCap: 40 * time.Millisecond}
	for retry, preJitter := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		40 * time.Millisecond, // capped
	} {
		for seed := uint64(0); seed < 20; seed++ {
			d := cfg.backoff(retry, seed)
			if d < preJitter/2 || d >= preJitter {
				t.Errorf("backoff(retry=%d, seed=%d) = %v, want in [%v, %v)", retry, seed, d, preJitter/2, preJitter)
			}
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	cfg := RetryConfig{}
	if a, b := cfg.backoff(1, 42), cfg.backoff(1, 42); a != b {
		t.Errorf("same (retry, seed) gave %v then %v", a, b)
	}
	// Different seeds should (overwhelmingly) jitter differently.
	distinct := map[time.Duration]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		distinct[cfg.backoff(0, seed)] = true
	}
	if len(distinct) < 2 {
		t.Error("jitter produced one value across 16 seeds")
	}
}

func TestServeRetryPolicyDefaults(t *testing.T) {
	p := RetryConfig{}.policy()
	if p.MaxRetries != 1 {
		t.Errorf("default MaxRetries = %d, want 1", p.MaxRetries)
	}
	if !p.RetryOn(core.Panicked) {
		t.Error("default policy does not retry Panicked")
	}
	for _, s := range []core.Status{core.TimedOut, core.VerifyFailed, core.Skipped} {
		if p.RetryOn(s) {
			t.Errorf("default policy retries %v; the budget token makes that pointless", s)
		}
	}
}

func TestSleepInterruptible(t *testing.T) {
	tok := par.NewCancelToken()
	start := time.Now()
	if !sleepInterruptible(15*time.Millisecond, tok) {
		t.Error("uncancelled sleep reported interruption")
	}
	if got := time.Since(start); got < 15*time.Millisecond {
		t.Errorf("slept %v, want >= 15ms", got)
	}

	tok2 := par.NewCancelToken()
	tok2.Cancel()
	start = time.Now()
	if sleepInterruptible(500*time.Millisecond, tok2) {
		t.Error("cancelled sleep reported completion")
	}
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("cancelled sleep took %v, want fast exit", got)
	}
}

package serve

// Package serve is gapd's serving layer: a fault-tolerant daemon core that
// mmaps (or generates) the benchmark graphs once into shared immutable CSRs
// and serves concurrent kernel queries over line-delimited JSON. Robustness
// is the design driver, composed from the harness's existing fault-model
// parts (DESIGN.md §9, §11):
//
//   - admission control (admission.go) sheds overload immediately instead of
//     queuing it into deadline misses;
//   - every admitted query runs under a deadline budget, threaded as a
//     par.Chain of the connection token and a fresh deadline token into
//     kernel.Options and the leased machine;
//   - transient failures retry with exponential backoff + jitter (retry.go),
//     reusing the core.Status taxonomy;
//   - a circuit breaker (breaker.go) quarantines a (framework, kernel) pair
//     that keeps losing machines, until a probe succeeds;
//   - the machine-lease pool (pool.go) self-heals: an abandoned machine is
//     replaced immediately and reaped in the background;
//   - SIGTERM drains gracefully under a hard deadline, and the drain proves
//     no machine lease leaked (servecheck).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// Config tunes the daemon. The zero value serves with the defaults described
// on the fields.
type Config struct {
	// PoolSize is the machine-lease pool size — the daemon's true concurrency
	// (queries beyond it wait briefly or are shed). Default 2.
	PoolSize int
	// Workers is the worker count per pooled machine. Default 4.
	Workers int

	// DefaultBudget is the per-query deadline when the request names none;
	// MaxBudget caps what a request may ask for. Defaults 1s and 10s.
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// Grace is how long past a fired deadline a kernel may ignore its token
	// before the machine is abandoned. Default 250ms.
	Grace time.Duration

	Admission AdmissionConfig
	Breaker   BreakerConfig
	Retry     RetryConfig

	// JournalPath, when set, appends every executed (admitted, non-shed)
	// query outcome to the suite's JSONL journal format (internal/core), so
	// served results and batch results share one ledger and one CellID key.
	JournalPath string
	// Seed drives retry jitter deterministically.
	Seed uint64
	// Logf receives operational messages (journal write failures, drain
	// progress). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) poolSize() int {
	if c.PoolSize > 0 {
		return c.PoolSize
	}
	return 2
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

func (c Config) defaultBudget() time.Duration {
	if c.DefaultBudget > 0 {
		return c.DefaultBudget
	}
	return time.Second
}

func (c Config) maxBudget() time.Duration {
	if c.MaxBudget > 0 {
		return c.MaxBudget
	}
	return 10 * time.Second
}

func (c Config) grace() time.Duration {
	if c.Grace > 0 {
		return c.Grace
	}
	return 250 * time.Millisecond
}

// counters is the server's monotonic outcome ledger (Stats responses and the
// drain log read it; tests assert on it).
type counters struct {
	accepted, completed, ok                     atomic.Int64
	shedRate, shedQueue, breakerShed, drainShed atomic.Int64
	panics, timeouts, retries                   atomic.Int64
}

// Server is the daemon core. Build with NewServer, feed it listeners via
// Serve (one goroutine each), stop with Shutdown.
type Server struct {
	cfg      Config
	pool     *Pool
	adm      *admission
	breakers *breakerSet

	graphs     map[string]*core.Input
	graphOrder []string
	frameworks map[string]kernel.Framework
	defaultFW  string

	journalMu sync.Mutex

	draining atomic.Bool
	queryID  atomic.Uint64
	c        counters

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]*par.CancelToken
	connWG    sync.WaitGroup
}

// NewServer builds a Server over the given prepared inputs and frameworks.
// The first framework is the default for requests that name none. Inputs and
// frameworks must be non-empty; frameworks should already be Prepared against
// the inputs (core.PrepareViews) so no conversion cost lands on first query.
func NewServer(cfg Config, inputs []*core.Input, frameworks []kernel.Framework) (*Server, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("serve: no graphs to serve")
	}
	if len(frameworks) == 0 {
		return nil, fmt.Errorf("serve: no frameworks to serve")
	}
	s := &Server{
		cfg:        cfg,
		pool:       NewPool(cfg.poolSize(), cfg.workers()),
		breakers:   newBreakerSet(cfg.Breaker),
		graphs:     make(map[string]*core.Input, len(inputs)),
		frameworks: make(map[string]kernel.Framework, len(frameworks)),
		defaultFW:  frameworks[0].Name(),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]*par.CancelToken),
	}
	s.adm = newAdmission(cfg.Admission, cfg.poolSize())
	for _, in := range inputs {
		name := in.Spec.Name
		if _, dup := s.graphs[name]; dup {
			return nil, fmt.Errorf("serve: duplicate graph %q", name)
		}
		s.graphs[name] = in
		s.graphOrder = append(s.graphOrder, name)
	}
	for _, f := range frameworks {
		if _, dup := s.frameworks[f.Name()]; dup {
			return nil, fmt.Errorf("serve: duplicate framework %q", f.Name())
		}
		s.frameworks[f.Name()] = f
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Pool exposes the lease pool (tests and the drain log read its counters).
func (s *Server) Pool() *Pool { return s.pool }

// Listen opens the daemon's listener for an address of the form
// "unix:/path/to.sock" (a stale socket file — one nobody is accepting on —
// is removed first; a live one is an error, not stolen) or a TCP address
// ("tcp:host:port" or plain "host:port").
func Listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if fi, err := os.Stat(path); err == nil {
			// The path exists. A crashed daemon leaves its socket file behind
			// (bind would fail EADDRINUSE even though nobody is accepting),
			// but unlinking unconditionally would let a second gapd silently
			// steal a live daemon's address — so prove staleness first: it
			// must be a socket, and connecting must be refused.
			if fi.Mode()&os.ModeSocket == 0 {
				return nil, fmt.Errorf("serve: %s exists and is not a socket; refusing to remove it", path)
			}
			if c, derr := net.DialTimeout("unix", path, 250*time.Millisecond); derr == nil {
				c.Close()
				return nil, fmt.Errorf("serve: a daemon is already listening on %s", path)
			} else if !errors.Is(derr, syscall.ECONNREFUSED) {
				return nil, fmt.Errorf("serve: probing existing socket %s: %v; refusing to remove it", path, derr)
			}
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("serve: removing stale socket %s: %w", path, err)
			}
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", strings.TrimPrefix(addr, "tcp:"))
}

// Serve accepts connections on l until Shutdown closes it. One goroutine per
// connection; responses to a connection are written in request order.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return fmt.Errorf("serve: server is draining")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil // Shutdown closed the listener
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn reads line-delimited JSON requests and writes one response line
// per request. The connection token fires when the client goes away (or at
// drain's hard phase), so in-flight queries for this client stop burning pool
// time on answers nobody will read.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	connTok := par.NewCancelToken()
	s.mu.Lock()
	s.conns[conn] = connTok
	s.mu.Unlock()
	defer func() {
		connTok.Cancel()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if err := conn.Close(); err != nil && !isClosedErr(err) {
			s.logf("serve: closing connection: %v", err)
		}
	}()

	w := bufio.NewWriter(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Code: CodeInvalidArgument, Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.handle(req, connTok)
		}
		b, err := json.Marshal(resp)
		if err != nil {
			b, _ = json.Marshal(Response{ID: resp.ID, Code: CodeInternal, Error: "response marshal failed"})
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// Scanner errors (reset, token too long) just end the connection.
}

// isClosedErr reports the benign double-close of a drained connection.
func isClosedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}

// handle dispatches one request.
func (s *Server) handle(req Request, connTok *par.CancelToken) Response {
	op, err := normalizeOp(req.Op)
	if err != nil {
		return Response{ID: req.ID, Code: CodeInvalidArgument, Error: err.Error()}
	}
	switch op {
	case OpPing:
		return Response{ID: req.ID, Code: CodeOK}
	case OpGraphs:
		return s.handleGraphs(req)
	case OpStats:
		st := s.StatsSnapshot()
		return Response{ID: req.ID, Code: CodeOK, Stats: &st}
	default: // OpQuery
		return s.query(req, connTok)
	}
}

func (s *Server) handleGraphs(req Request) Response {
	resp := Response{ID: req.ID, Code: CodeOK}
	for _, name := range s.graphOrder {
		g := s.graphs[name].Graph
		resp.Graphs = append(resp.Graphs, GraphInfo{
			Name:  name,
			Nodes: int64(g.NumNodes()),
			Edges: g.NumEdges(),
		})
	}
	return resp
}

// StatsSnapshot assembles the live counter snapshot.
func (s *Server) StatsSnapshot() Stats {
	return Stats{
		Accepted:          s.c.accepted.Load(),
		Completed:         s.c.completed.Load(),
		OK:                s.c.ok.Load(),
		ShedRate:          s.c.shedRate.Load(),
		ShedQueue:         s.c.shedQueue.Load(),
		BreakerShed:       s.c.breakerShed.Load(),
		DrainShed:         s.c.drainShed.Load(),
		Panics:            s.c.panics.Load(),
		Timeouts:          s.c.timeouts.Load(),
		Retries:           s.c.retries.Load(),
		Abandoned:         s.pool.Abandoned(),
		BreakerOpens:      s.breakers.Opens(),
		Inflight:          s.adm.Inflight(),
		OutstandingLeases: s.pool.Outstanding(),
	}
}

// Shutdown drains the daemon under a hard deadline:
//
//  1. stop accepting (listeners close; new queries shed UNAVAILABLE);
//  2. soft phase (80% of the deadline): in-flight queries finish on their
//     own budgets;
//  3. hard phase: every connection token is cancelled, so stragglers drain
//     cooperatively at their next poll;
//  4. the machine pool drains — proving, under -tags=servecheck, that no
//     machine lease leaked — and connections are closed.
//
// The error reports an incomplete drain (leaked leases, stuck kernels);
// nil means every lease was settled and every reaper joined.
func (s *Server) Shutdown(hard time.Duration) error {
	s.draining.Store(true)
	deadline := time.Now().Add(hard)

	s.mu.Lock()
	for l := range s.listeners {
		if err := l.Close(); err != nil && !isClosedErr(err) {
			s.logf("serve: closing listener: %v", err)
		}
	}
	s.listeners = map[net.Listener]struct{}{}
	s.mu.Unlock()

	soft := time.Now().Add(hard * 4 / 5)
	for s.adm.Inflight() > 0 && time.Now().Before(soft) {
		time.Sleep(time.Millisecond)
	}
	if n := s.adm.Inflight(); n > 0 {
		s.logf("serve: drain hard phase: cancelling %d in-flight queries", n)
		s.mu.Lock()
		for _, tok := range s.conns {
			tok.Cancel()
		}
		s.mu.Unlock()
	}
	for s.adm.Inflight() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	remaining := time.Until(deadline)
	if remaining < 10*time.Millisecond {
		remaining = 10 * time.Millisecond // give the pool a beat even on a blown deadline
	}
	err := s.pool.Drain(remaining)

	// Close connections last: shed responses for queries that arrived during
	// the drain have been written by now, and closing unblocks the readers.
	s.mu.Lock()
	for conn := range s.conns {
		if cerr := conn.Close(); cerr != nil && !isClosedErr(cerr) {
			s.logf("serve: closing connection: %v", cerr)
		}
	}
	s.mu.Unlock()
	s.connWG.Wait()

	if inflight := s.adm.Inflight(); err == nil && inflight > 0 {
		err = fmt.Errorf("serve: drain deadline passed with %d queries still in flight", inflight)
	}
	return err
}

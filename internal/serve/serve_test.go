package serve

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
)

// ---- stub frameworks -------------------------------------------------------
// The serving fault paths are driven by stubs that misbehave in BFS only, so
// a CC query against the same server proves the daemon keeps serving around
// the fault (same idiom as internal/core's fault tests).

type stubFramework struct{ name string }

func (f stubFramework) Name() string { return f.name }
func (stubFramework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	parent := make([]graph.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	return parent
}
func (stubFramework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	return make([]kernel.Dist, g.NumNodes())
}
func (stubFramework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (stubFramework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	return make([]graph.NodeID, g.NumNodes())
}
func (stubFramework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (stubFramework) TC(g *graph.Graph, opt kernel.Options) int64 { return 0 }

// panicBFS panics on every BFS call.
type panicBFS struct{ stubFramework }

func (f panicBFS) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	panic("stub: BFS exploded")
}

// flakyBFS panics on the first BFS call only — the transient fault the retry
// policy exists for.
type flakyBFS struct {
	stubFramework
	calls *atomic.Int32
}

func (f flakyBFS) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	if f.calls.Add(1) == 1 {
		panic("stub: transient wobble")
	}
	return f.stubFramework.BFS(g, src, opt)
}

// stallBFS blocks cooperatively until the query token fires — the
// well-behaved slow kernel (TimedOut, machine kept).
type stallBFS struct{ stubFramework }

func (f stallBFS) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	for !opt.Cancelled() {
		time.Sleep(100 * time.Microsecond)
	}
	return f.stubFramework.BFS(g, src, opt)
}

// hangFor bounds how long the misbehaving stubs ignore cancellation, so the
// abandoned machines can be reaped before the tests' drain deadlines.
const hangFor = 300 * time.Millisecond

// hangBFS ignores the token entirely for hangFor — the misbehaving kernel
// whose machine is abandoned.
type hangBFS struct{ stubFramework }

func (f hangBFS) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	time.Sleep(hangFor)
	return f.stubFramework.BFS(g, src, opt)
}

// recoveringBFS hangs for its first N calls, then behaves — the quarantine-
// then-probe-then-close path of the circuit breaker.
type recoveringBFS struct {
	stubFramework
	calls *atomic.Int32
	bad   int32
}

func (f recoveringBFS) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	if f.calls.Add(1) <= f.bad {
		time.Sleep(hangFor)
	}
	return f.stubFramework.BFS(g, src, opt)
}

// ---- harness ---------------------------------------------------------------

func smallInput(t *testing.T) *core.Input {
	t.Helper()
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 6, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := in.Close(); err != nil {
			t.Errorf("closing input: %v", err)
		}
	})
	return in
}

// startServer builds and serves a Server on a unix socket; the test owns
// Shutdown (a cleanup drains defensively for tests that fail early).
func startServer(t *testing.T, cfg Config, in *core.Input, fws ...kernel.Framework) (*Server, string) {
	t.Helper()
	cfg.Logf = t.Logf
	srv, err := NewServer(cfg, []*core.Input{in}, fws)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "gapd.sock")
	l, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = srv.Shutdown(5 * time.Second) })
	return srv, sock
}

type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, sock string) *testClient {
	t.Helper()
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) send(req Request) {
	c.t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) recv() Response {
	c.t.Helper()
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("reading response: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.t.Fatalf("bad response line %q: %v", line, err)
	}
	return resp
}

func (c *testClient) do(req Request) Response {
	c.send(req)
	return c.recv()
}

// ---- tests -----------------------------------------------------------------

func TestServeEndToEndRealFramework(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 2, Workers: 2}, in, core.FrameworkByName("GAP"))
	c := dial(t, sock)

	if resp := c.do(Request{Op: OpPing, ID: "p"}); resp.Code != CodeOK || resp.ID != "p" {
		t.Fatalf("ping: %+v", resp)
	}
	resp := c.do(Request{Op: OpGraphs})
	if resp.Code != CodeOK || len(resp.Graphs) != 1 || resp.Graphs[0].Name != "Kron" {
		t.Fatalf("graphs: %+v", resp)
	}
	n := resp.Graphs[0].Nodes
	if n != int64(in.Graph.NumNodes()) {
		t.Errorf("graphs reported %d nodes, input has %d", n, in.Graph.NumNodes())
	}

	src := int64(in.Sources[0])
	bfs := c.do(Request{Kernel: "BFS", Graph: "Kron", Source: src})
	if bfs.Code != CodeOK || bfs.Result == nil || bfs.Result.Reached < 1 {
		t.Fatalf("BFS: %+v", bfs)
	}
	target := int64(in.Sources[1])
	sssp := c.do(Request{Kernel: "SSSP", Graph: "Kron", Source: src, Target: &target})
	if sssp.Code != CodeOK || sssp.Result == nil || sssp.Result.Reached < 1 {
		t.Fatalf("SSSP: %+v", sssp)
	}
	pr := c.do(Request{Kernel: "PR", Graph: "Kron", K: 5})
	if pr.Code != CodeOK || pr.Result == nil || len(pr.Result.TopK) != 5 {
		t.Fatalf("PR: %+v", pr)
	}
	for i := 1; i < len(pr.Result.TopK); i++ {
		if pr.Result.TopK[i].Score > pr.Result.TopK[i-1].Score {
			t.Errorf("PR topk not sorted: %+v", pr.Result.TopK)
		}
	}
	cc := c.do(Request{Kernel: "CC", Graph: "Kron", Vertex: src})
	if cc.Code != CodeOK || cc.Result == nil || cc.Result.Size < 1 {
		t.Fatalf("CC: %+v", cc)
	}

	st := c.do(Request{Op: OpStats})
	if st.Stats == nil || st.Stats.OK != 4 || st.Stats.Accepted != 4 {
		t.Fatalf("stats: %+v", st.Stats)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := srv.Pool().Outstanding(); got != 0 {
		t.Errorf("outstanding leases after drain = %d", got)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	in := smallInput(t)
	_, sock := startServer(t, Config{PoolSize: 1, Workers: 1}, in, stubFramework{"Stub"})
	c := dial(t, sock)
	n := int64(in.Graph.NumNodes())

	cases := []struct {
		name string
		req  Request
		code Code
	}{
		{"unknown kernel", Request{Kernel: "BC"}, CodeInvalidArgument},
		{"unknown graph", Request{Kernel: "BFS", Graph: "Nope"}, CodeNotFound},
		{"unknown framework", Request{Kernel: "BFS", Graph: "Kron", Framework: "Nope"}, CodeNotFound},
		{"source out of range", Request{Kernel: "BFS", Graph: "Kron", Source: n}, CodeInvalidArgument},
		{"negative vertex", Request{Kernel: "CC", Graph: "Kron", Vertex: -1}, CodeInvalidArgument},
		{"unknown op", Request{Op: "frobnicate"}, CodeInvalidArgument},
	}
	for _, tc := range cases {
		if resp := c.do(tc.req); resp.Code != tc.code {
			t.Errorf("%s: code = %s (%s), want %s", tc.name, resp.Code, resp.Error, tc.code)
		}
	}
	// A malformed line answers INVALID_ARGUMENT instead of killing the
	// connection.
	if _, err := c.conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	if resp := c.recv(); resp.Code != CodeInvalidArgument {
		t.Errorf("malformed line: %+v", resp)
	}
	// The connection still serves after the garbage.
	if resp := c.do(Request{Op: OpPing}); resp.Code != CodeOK {
		t.Errorf("ping after garbage: %+v", resp)
	}
	// Kernel name is case-insensitive; empty graph defaults when only one is
	// served.
	if resp := c.do(Request{Kernel: "bfs", Source: 1}); resp.Code != CodeOK {
		t.Errorf("lowercase kernel on default graph: %+v", resp)
	}
}

func TestServeBudgetStallCooperative(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 1, Workers: 1, Grace: 200 * time.Millisecond}, in, stallBFS{stubFramework{"Stub"}})
	c := dial(t, sock)

	start := time.Now()
	resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 60})
	if resp.Code != CodeDeadlineExceeded {
		t.Fatalf("stalled query: %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("cooperative stall took %v, want ~budget (60ms)", elapsed)
	}
	// The kernel drained cooperatively: machine kept, no abandonment.
	if got := srv.Pool().Abandoned(); got != 0 {
		t.Errorf("abandoned = %d after a cooperative stall", got)
	}
	// The same pool serves the next query.
	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeOK {
		t.Fatalf("query after stall: %+v", resp)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeHangAbandonsAndSelfHeals(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 1, Workers: 1, Grace: 40 * time.Millisecond}, in, hangBFS{stubFramework{"Stub"}})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 40})
	if resp.Code != CodeDeadlineExceeded || !strings.Contains(resp.Error, "abandoned") {
		t.Fatalf("hung query: %+v", resp)
	}
	if got := srv.Pool().Abandoned(); got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
	// Self-healing: the replacement machine serves immediately, long before
	// the hung kernel (hangFor) returns.
	start := time.Now()
	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeOK {
		t.Fatalf("query after abandonment: %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > hangFor {
		t.Errorf("replacement machine took %v — waited for the hung kernel?", elapsed)
	}
	// Drain joins the reaper (the hang is bounded), so no goroutine leaks.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeRetriesTransientPanic(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 1, Workers: 1}, in, flakyBFS{stubFramework{"Stub"}, &atomic.Int32{}})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1})
	if resp.Code != CodeOK || resp.Retries != 1 {
		t.Fatalf("flaky query: code=%s retries=%d err=%q, want OK with 1 retry", resp.Code, resp.Retries, resp.Error)
	}
	if st := srv.StatsSnapshot(); st.Retries != 1 || st.Panics != 0 || st.OK != 1 {
		t.Errorf("stats after recovered retry: %+v", st)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeDeterministicPanicIsInternal(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 1, Workers: 1}, in, panicBFS{stubFramework{"Stub"}})
	c := dial(t, sock)

	resp := c.do(Request{Kernel: "BFS", Source: 1})
	if resp.Code != CodeInternal || !strings.Contains(resp.Error, "BFS exploded") {
		t.Fatalf("panicking query: %+v", resp)
	}
	if resp.Retries != 1 {
		t.Errorf("retries = %d, want 1 (retried, panicked again)", resp.Retries)
	}
	// The daemon survives its kernels: the next query is served.
	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeOK {
		t.Fatalf("query after panic: %+v", resp)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeQueueWatermarkSheds(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{
		PoolSize: 1, Workers: 1,
		Admission: AdmissionConfig{MaxQueue: -1}, // no queue: inflight capped at 1
	}, in, stallBFS{stubFramework{"Stub"}})
	cA, cB := dial(t, sock), dial(t, sock)

	// Fill the one slot with a stalled query, then overflow from a second
	// connection.
	cA.send(Request{Kernel: "BFS", Source: 1, BudgetMS: 400})
	waitFor(t, func() bool { return srv.adm.Inflight() == 1 })
	start := time.Now()
	resp := cB.do(Request{Kernel: "BFS", Source: 2})
	if resp.Code != CodeResourceExhausted {
		t.Fatalf("overflow query: %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("shed took %v, want immediate", elapsed)
	}
	if st := srv.StatsSnapshot(); st.ShedQueue != 1 {
		t.Errorf("shed_queue = %d, want 1", st.ShedQueue)
	}
	if resp := cA.recv(); resp.Code != CodeDeadlineExceeded {
		t.Fatalf("stalled query: %+v", resp)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeRateSheds(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{
		PoolSize: 1, Workers: 1,
		Admission: AdmissionConfig{Rate: 0.5, Burst: 1},
	}, in, stubFramework{"Stub"})
	c := dial(t, sock)

	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeOK {
		t.Fatalf("first query: %+v", resp)
	}
	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeResourceExhausted {
		t.Fatalf("second query inside the rate window: %+v", resp)
	}
	if st := srv.StatsSnapshot(); st.ShedRate != 1 {
		t.Errorf("shed_rate = %d, want 1", st.ShedRate)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeBreakerQuarantineProbeClose(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{
		PoolSize: 2, Workers: 1,
		Grace:   30 * time.Millisecond,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 150 * time.Millisecond},
	}, in, recoveringBFS{stubFramework{"Stub"}, &atomic.Int32{}, 2})
	c := dial(t, sock)

	// Two hanging queries lose two machines: the breaker opens.
	for i := 0; i < 2; i++ {
		resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 40})
		if resp.Code != CodeDeadlineExceeded {
			t.Fatalf("hang %d: %+v", i, resp)
		}
	}
	waitFor(t, func() bool { return srv.StatsSnapshot().BreakerOpens == 1 })

	// Quarantined: fail-fast UNAVAILABLE, no pool time, other kernels fine.
	resp := c.do(Request{Kernel: "BFS", Source: 1})
	if resp.Code != CodeUnavailable || !strings.Contains(resp.Error, "quarantined") {
		t.Fatalf("quarantined query: %+v", resp)
	}
	if resp := c.do(Request{Kernel: "CC", Vertex: 1}); resp.Code != CodeOK {
		t.Fatalf("unrelated kernel during quarantine: %+v", resp)
	}
	if st := srv.StatsSnapshot(); st.BreakerShed != 1 {
		t.Errorf("breaker_shed = %d, want 1", st.BreakerShed)
	}

	// After the cooldown one probe goes through; the stub has recovered, so
	// the probe closes the circuit and traffic flows again.
	time.Sleep(180 * time.Millisecond)
	if resp := c.do(Request{Kernel: "BFS", Source: 1, BudgetMS: 400}); resp.Code != CodeOK {
		t.Fatalf("probe query: %+v", resp)
	}
	if resp := c.do(Request{Kernel: "BFS", Source: 2, BudgetMS: 400}); resp.Code != CodeOK {
		t.Fatalf("query after circuit closed: %+v", resp)
	}
	if st := srv.StatsSnapshot(); st.BreakerOpens != 1 {
		t.Errorf("breaker reopened: opens = %d, want 1", st.BreakerOpens)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeGracefulDrainUnderLoad(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := smallInput(t)
	srv, sock := startServer(t, Config{PoolSize: 2, Workers: 1, Grace: 50 * time.Millisecond}, in, stallBFS{stubFramework{"Stub"}})
	// Two stalled queries (one per connection — a connection serves its
	// requests in order) hold both machines, then SIGTERM-equivalent.
	cA, cB := dial(t, sock), dial(t, sock)
	cA.send(Request{Kernel: "BFS", Source: 1, ID: "a", BudgetMS: 5000})
	cB.send(Request{Kernel: "BFS", Source: 2, ID: "b", BudgetMS: 5000})
	waitFor(t, func() bool { return srv.adm.Inflight() == 2 })

	start := time.Now()
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2500*time.Millisecond {
		t.Errorf("drain took %v, past the hard deadline", elapsed)
	}
	// The hard phase cancelled the connection tokens; the stalled queries
	// drained cooperatively as DEADLINE_EXCEEDED before the sockets closed.
	for i, cl := range []*testClient{cA, cB} {
		if resp := cl.recv(); resp.Code != CodeDeadlineExceeded {
			t.Errorf("drained query %d: %+v", i, resp)
		}
	}
	if got := srv.Pool().Outstanding(); got != 0 {
		t.Errorf("outstanding leases after drain = %d", got)
	}
	// A fresh connection is refused (listener closed).
	if _, err := net.Dial("unix", sock); err == nil {
		t.Error("dial succeeded after drain")
	}
}

func TestServeJournalsQueryOutcomes(t *testing.T) {
	in := smallInput(t)
	journal := filepath.Join(t.TempDir(), "served.jsonl")
	srv, sock := startServer(t, Config{PoolSize: 1, Workers: 1, JournalPath: journal},
		in, stubFramework{"Stub"}, panicBFS{stubFramework{"Boom"}})
	c := dial(t, sock)

	if resp := c.do(Request{Kernel: "BFS", Source: 1}); resp.Code != CodeOK {
		t.Fatalf("ok query: %+v", resp)
	}
	if resp := c.do(Request{Kernel: "BFS", Source: 1, Framework: "Boom"}); resp.Code != CodeInternal {
		t.Fatalf("panic query: %+v", resp)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	results, err := core.ReadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(results))
	}
	okRes, boomRes := results[0], results[1]
	if okRes.CellID() != "Stub|BFS|Kron|Baseline" {
		t.Errorf("ok CellID = %q", okRes.CellID())
	}
	if okRes.Status != core.OK || !okRes.Verified || okRes.Seconds < 0 {
		t.Errorf("ok journal line: %+v", okRes)
	}
	if okRes.GraphEpoch != in.Graph.Epoch() {
		t.Errorf("journal epoch %#x, graph epoch %#x", okRes.GraphEpoch, in.Graph.Epoch())
	}
	if boomRes.CellID() != "Boom|BFS|Kron|Baseline" {
		t.Errorf("panic CellID = %q", boomRes.CellID())
	}
	if boomRes.Status != core.Panicked || boomRes.Verified {
		t.Errorf("panic journal line: %+v", boomRes)
	}
	// The retry left two attempt records on the one journaled "trial".
	if len(boomRes.TrialRecords) != 2 {
		t.Errorf("panic TrialRecords = %d, want 2 (attempt + retry)", len(boomRes.TrialRecords))
	}
}

// waitFor polls cond to success or fails the test after 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- Listen socket handling ------------------------------------------------

func TestListenRefusesLiveSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "gapd.sock")
	l, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A second daemon against the same path must be refused, not silently
	// steal the live daemon's address by unlinking its socket.
	if _, err := Listen("unix:" + sock); err == nil {
		t.Fatal("second Listen bound over a live daemon's socket")
	}
	if _, err := os.Stat(sock); err != nil {
		t.Fatalf("live socket file was removed: %v", err)
	}
	// The first daemon still works.
	c, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("live daemon unreachable after refused rebind: %v", err)
	}
	c.Close()
}

func TestListenReplacesStaleSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "gapd.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed daemon: stop accepting but leave the socket file.
	l.(*net.UnixListener).SetUnlinkOnClose(false)
	l.Close()
	l2, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatalf("Listen over a stale socket: %v", err)
	}
	l2.Close()
}

func TestListenRefusesNonSocketFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gapd.sock")
	if err := os.WriteFile(path, []byte("not a socket"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("unix:" + path); err == nil {
		t.Fatal("Listen bound over a regular file")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("regular file was deleted: %v", err)
	}
}

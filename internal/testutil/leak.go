package testutil

import (
	"runtime"
	"testing"
	"time"

	"gapbench/internal/par"
)

// CheckGoroutines asserts that the code under test does not leak goroutines:
// it snapshots runtime.NumGoroutine and returns a function (meant for defer)
// that fails the test if the count has not returned to the baseline. Every
// loop helper in internal/par and executor in internal/galois joins its
// workers before returning, so a lingering goroutine means a lost worker —
// at production scale, a slow leak that eventually starves the scheduler.
//
// Workers parked in runtime.Gosched/timer sleeps can take a few scheduler
// ticks to unwind after wg.Wait returns, so the check polls with a deadline
// instead of sampling once.
//
//	defer testutil.CheckGoroutines(t)()
func CheckGoroutines(tb testing.TB) func() {
	return checkGoroutines(tb, 5*time.Second)
}

// checkGoroutines is CheckGoroutines with an injectable retry deadline.
func checkGoroutines(tb testing.TB, patience time.Duration) func() {
	tb.Helper()
	// The package-level par helpers lazily build the process-default
	// machine, whose pool goroutines live for the process lifetime. Warm it
	// before snapshotting so its workers are part of the baseline rather
	// than being reported as a leak by whichever test touches par first.
	par.Default()
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(patience)
		var after int
		for {
			runtime.Gosched()
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		tb.Errorf("goroutine leak: %d before, %d still running after deadline", before, after)
	}
}

package testutil

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingTB captures Errorf calls so the leak checker's failure path can
// itself be tested.
type recordingTB struct {
	testing.TB // panics on unimplemented methods, which the checker must not call
	errors     []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func TestCheckGoroutinesCleanAfterJoin(t *testing.T) {
	check := CheckGoroutines(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
	check() // joined workers: must not report
}

func TestCheckGoroutinesToleratesSlowUnwind(t *testing.T) {
	check := CheckGoroutines(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond) // still running when check starts
		close(done)
	}()
	check() // must retry until the goroutine exits rather than fail instantly
	<-done
}

func TestCheckGoroutinesReportsLeak(t *testing.T) {
	rec := &recordingTB{}
	check := checkGoroutines(rec, 50*time.Millisecond)
	block := make(chan struct{})
	go func() { <-block }()
	check()
	close(block)
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "goroutine leak") {
		t.Fatalf("expected one leak report, got %v", rec.errors)
	}
}

// Package testutil provides the shared conformance suite every framework
// reproduction must pass: all six kernels, on crafted corner-case graphs and
// small instances of all five generated benchmark topologies, validated
// against the serial oracles in internal/verify. This mirrors the paper's
// cross-validation, where each team's results were checked by the others.
package testutil

import (
	"fmt"
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/verify"
)

// Case is one named test graph.
type Case struct {
	Name  string
	Graph *graph.Graph
}

// mustBuild builds a graph from edges or fails the test.
func mustBuild(tb testing.TB, edges []graph.WEdge, opt graph.BuildOptions) *graph.Graph {
	tb.Helper()
	g, err := graph.BuildWeighted(edges, opt)
	if err != nil {
		tb.Fatalf("building test graph: %v", err)
	}
	return g
}

// CraftedGraphs returns small hand-built graphs covering structural corner
// cases: paths, cycles, stars, cliques, disconnected pieces, an empty graph,
// and a single vertex.
func CraftedGraphs(tb testing.TB) []Case {
	tb.Helper()
	var cases []Case

	// Directed path 0->1->2->3->4 with varying weights.
	cases = append(cases, Case{"path5", mustBuild(tb, []graph.WEdge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 7}, {U: 3, V: 4, W: 2},
	}, graph.BuildOptions{NumNodes: 5, Directed: true})})

	// Undirected cycle of 6.
	cycle := make([]graph.WEdge, 0, 6)
	for i := int32(0); i < 6; i++ {
		cycle = append(cycle, graph.WEdge{U: i, V: (i + 1) % 6, W: graph.Weight(i%3 + 1)})
	}
	cases = append(cases, Case{"cycle6", mustBuild(tb, cycle, graph.BuildOptions{NumNodes: 6, Directed: false})})

	// Undirected star: hub 0 with 9 leaves.
	star := make([]graph.WEdge, 0, 9)
	for i := int32(1); i < 10; i++ {
		star = append(star, graph.WEdge{U: 0, V: i, W: 5})
	}
	cases = append(cases, Case{"star10", mustBuild(tb, star, graph.BuildOptions{NumNodes: 10, Directed: false})})

	// Undirected clique of 8 (28 edges, 56 triangles).
	var clique []graph.WEdge
	for i := int32(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			clique = append(clique, graph.WEdge{U: i, V: j, W: graph.Weight((i+j)%7 + 1)})
		}
	}
	cases = append(cases, Case{"clique8", mustBuild(tb, clique, graph.BuildOptions{NumNodes: 8, Directed: false})})

	// Two disconnected triangles plus two isolated vertices.
	cases = append(cases, Case{"disconnected", mustBuild(tb, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 0, W: 3},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 2}, {U: 5, V: 3, W: 3},
	}, graph.BuildOptions{NumNodes: 8, Directed: false})})

	// Directed graph where the shortest weighted path is not the shortest
	// hop path: 0->1->2->3 (weights 1,1,1) vs 0->3 (weight 10).
	cases = append(cases, Case{"weightedDetour", mustBuild(tb, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 10},
		{U: 3, V: 0, W: 1},
	}, graph.BuildOptions{NumNodes: 4, Directed: true})})

	// Directed graph with a vertex unreachable from 0 and a dangling vertex
	// (no out-edges), exercising BFS -1 parents and PR dangling mass.
	cases = append(cases, Case{"unreachable", mustBuild(tb, []graph.WEdge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 2}, {U: 3, V: 0, W: 2},
	}, graph.BuildOptions{NumNodes: 5, Directed: true})})

	// Single vertex, no edges.
	cases = append(cases, Case{"singleton", mustBuild(tb, nil, graph.BuildOptions{NumNodes: 1, Directed: false})})

	// Two cliques joined by a bridge: communities with a cut vertex pair,
	// high-BC bridge endpoints.
	var bridge []graph.WEdge
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			bridge = append(bridge,
				graph.WEdge{U: i, V: j, W: graph.Weight(i + j + 1)},
				graph.WEdge{U: i + 5, V: j + 5, W: graph.Weight(i + j + 2)})
		}
	}
	bridge = append(bridge, graph.WEdge{U: 4, V: 5, W: 1})
	cases = append(cases, Case{"twoCliquesBridge", mustBuild(tb, bridge, graph.BuildOptions{NumNodes: 10, Directed: false})})

	// Complete bipartite K3,4: triangle-free but dense, stresses TC's
	// intersection logic and BFS's two-level structure.
	var bip []graph.WEdge
	for i := int32(0); i < 3; i++ {
		for j := int32(3); j < 7; j++ {
			bip = append(bip, graph.WEdge{U: i, V: j, W: graph.Weight(i*7 + j)})
		}
	}
	cases = append(cases, Case{"bipartiteK34", mustBuild(tb, bip, graph.BuildOptions{NumNodes: 7, Directed: false})})

	// A long weighted path where delta-stepping crosses many buckets, plus a
	// shortcut chord whose weight makes it a trap for greedy relaxation.
	var lp []graph.WEdge
	for i := int32(0); i < 30; i++ {
		lp = append(lp, graph.WEdge{U: i, V: i + 1, W: 200})
	}
	lp = append(lp, graph.WEdge{U: 0, V: 30, W: 255})
	cases = append(cases, Case{"bucketPath", mustBuild(tb, lp, graph.BuildOptions{NumNodes: 31, Directed: true})})

	// Directed star-of-stars: hub -> spokes -> leaves, skewed out-degrees
	// with a three-level BFS from the hub.
	var sos []graph.WEdge
	for sp := int32(1); sp <= 6; sp++ {
		sos = append(sos, graph.WEdge{U: 0, V: sp, W: 2})
		for l := int32(0); l < 4; l++ {
			sos = append(sos, graph.WEdge{U: sp, V: 7 + (sp-1)*4 + l, W: 3})
		}
	}
	cases = append(cases, Case{"starOfStars", mustBuild(tb, sos, graph.BuildOptions{NumNodes: 31, Directed: true})})

	return cases
}

// GeneratedGraphs returns small instances of the five benchmark topologies.
func GeneratedGraphs(tb testing.TB, scale int) []Case {
	tb.Helper()
	var cases []Case
	for _, name := range generate.Names {
		g, err := generate.ByName(name, scale, 42)
		if err != nil {
			tb.Fatalf("generating %s: %v", name, err)
		}
		cases = append(cases, Case{name, g})
	}
	return cases
}

// AllGraphs returns crafted plus generated test graphs. Under -short (the
// race-detector smoke tier in scripts/check.sh) only the crafted corner-case
// graphs run: they exercise every structural edge case in milliseconds,
// which is what a seconds-budget race sweep needs.
func AllGraphs(tb testing.TB) []Case {
	crafted := CraftedGraphs(tb)
	if testing.Short() {
		return crafted
	}
	return append(crafted, GeneratedGraphs(tb, 8)...)
}

// Sources picks deterministic test sources for a graph: the first vertex
// with out-degree > 0 plus a couple of probes around the id space.
func Sources(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	var out []graph.NodeID
	for _, cand := range []graph.NodeID{0, n / 3, n / 2, n - 1} {
		if g.OutDegree(cand) > 0 || n == 1 {
			out = append(out, cand)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// BCSources returns up to kernel.BCSources roots for BC trials.
func BCSources(g *graph.Graph) []graph.NodeID {
	src := Sources(g)
	if len(src) > kernel.BCSources {
		src = src[:kernel.BCSources]
	}
	return src
}

// RunConformance exercises all six kernels of f on all test graphs, in both
// Baseline and Optimized modes, checking every result against the oracles.
func RunConformance(t *testing.T, f kernel.Framework) {
	t.Helper()
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for _, tc := range AllGraphs(t) {
				tc := tc
				t.Run(tc.Name, func(t *testing.T) {
					t.Parallel()
					checkAllKernels(t, f, tc.Graph, mode, tc.Name)
				})
			}
		})
	}
}

func checkAllKernels(t *testing.T, f kernel.Framework, g *graph.Graph, mode kernel.Mode, name string) {
	t.Helper()
	opt := kernel.Options{Mode: mode, UndirectedView: g.Undirected()}
	if mode == kernel.Optimized {
		opt.GraphName = name
		relabeled, _ := graph.DegreeRelabel(opt.UndirectedView)
		opt.RelabeledView = relabeled
	}

	for _, src := range Sources(g) {
		if err := verify.CheckBFS(g, src, f.BFS(g, src, opt)); err != nil {
			t.Errorf("BFS from %d: %v", src, err)
		}
		if g.Weighted() {
			if err := verify.CheckSSSP(g, src, f.SSSP(g, src, opt)); err != nil {
				t.Errorf("SSSP from %d: %v", src, err)
			}
		}
	}
	if err := verify.CheckPR(g, f.PR(g, opt)); err != nil {
		t.Errorf("PR: %v", err)
	}
	if err := verify.CheckCC(g, f.CC(g, opt)); err != nil {
		t.Errorf("CC: %v", err)
	}
	if srcs := BCSources(g); len(srcs) > 0 {
		if err := verify.CheckBC(g, srcs, f.BC(g, srcs, opt)); err != nil {
			t.Errorf("BC from %v: %v", srcs, err)
		}
	}
	if err := verify.CheckTC(g, f.TC(g, opt)); err != nil {
		t.Errorf("TC: %v", err)
	}
}

// RunKernelAcrossWorkers runs one kernel at several worker counts to flush
// out parallelism-dependent bugs.
func RunKernelAcrossWorkers(t *testing.T, f kernel.Framework, g *graph.Graph) {
	t.Helper()
	for _, workers := range []int{1, 2, 7} {
		opt := kernel.Options{Workers: workers, UndirectedView: g.Undirected()}
		for _, src := range Sources(g)[:1] {
			if err := verify.CheckBFS(g, src, f.BFS(g, src, opt)); err != nil {
				t.Errorf("workers=%d BFS: %v", workers, err)
			}
			if g.Weighted() {
				if err := verify.CheckSSSP(g, src, f.SSSP(g, src, opt)); err != nil {
					t.Errorf("workers=%d SSSP: %v", workers, err)
				}
			}
		}
		if err := verify.CheckCC(g, f.CC(g, opt)); err != nil {
			t.Errorf("workers=%d CC: %v", workers, err)
		}
		if err := verify.CheckTC(g, f.TC(g, opt)); err != nil {
			t.Errorf("workers=%d TC: %v", workers, err)
		}
	}
}

// Describe asserts that a framework implements the metadata interface and
// has a complete Table III row.
func Describe(t *testing.T, f kernel.Framework) {
	t.Helper()
	d, ok := f.(kernel.Describer)
	if !ok {
		t.Fatalf("%s does not implement kernel.Describer", f.Name())
	}
	alg := d.Algorithms()
	for field, v := range map[string]string{
		"BFS": alg.BFS, "SSSP": alg.SSSP, "CC": alg.CC,
		"PR": alg.PR, "BC": alg.BC, "TC": alg.TC,
	} {
		if v == "" {
			t.Errorf("%s: empty Table III entry for %s", f.Name(), field)
		}
	}
	if len(d.Attributes()) == 0 {
		t.Errorf("%s: empty Table II attributes", f.Name())
	}
}

// GraphSummary formats a short graph description for test names.
func GraphSummary(g *graph.Graph) string {
	return fmt.Sprintf("n=%d m=%d", g.NumNodes(), g.NumEdgesUndirected())
}

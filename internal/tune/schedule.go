// Package tune is the schedule-tuning layer grown out of GraphIt's
// miniature autotuner: the schedule vocabulary (direction, frontier layout,
// bucket fusion, cache tiling), the exhaustive per-kernel schedule space, a
// timed explorer, and a persistent store keyed by (kernel, graph Epoch,
// mode) so that `gapbench -tune` can write tuned schedules in one process
// and later runs can load them — the paper's Optimized rule set ("They were
// not required to include the time for such tuning efforts") made
// self-driving across processes via the PR 8 graph identity.
package tune

import "gapbench/internal/frontier"

// Direction is an edge-traversal direction choice.
type Direction int

// Traversal directions the scheduling language exposes.
const (
	// DirOpt switches between push and pull per round using the Beamer
	// degree-sum dispatcher (frontier.Dispatcher).
	DirOpt Direction = iota
	// PushOnly always traverses from the frontier outward (no per-round
	// accounting — the Optimized-mode Road BFS trick from §V-A).
	PushOnly
	// PullOnly always traverses into unvisited vertices.
	PullOnly
)

// Schedule is one point in the optimization space. It is a comparable value
// type (no slices/maps) so explorers and stores can use == directly.
type Schedule struct {
	Direction    Direction
	Frontier     frontier.Layout
	BucketFusion bool // SSSP: process same-priority buckets without a barrier
	CacheTiling  bool // PR/CC: segment in-edges into cache-sized tiles
	ShortCircuit bool // CC label propagation: pointer-jump chains
	NumSegments  int  // tile count when CacheTiling is set
}

// SegmentsFor sizes cache tiles for an n-vertex graph so each segment's
// source-vertex range fits roughly in a per-core cache slice.
func SegmentsFor(n int64) int {
	const targetVerticesPerSegment = 1 << 15
	segs := int((n + targetVerticesPerSegment - 1) / targetVerticesPerSegment)
	if segs < 1 {
		segs = 1
	}
	return segs
}

// Space enumerates the meaningful schedule points for a kernel on an
// n-vertex graph. The enumeration is deterministic: the same (kernel, n)
// always yields the same candidates in the same order, which is what makes
// stored tuning results comparable across runs.
func Space(kernelName string, n int64) []Schedule {
	segs := SegmentsFor(n)
	switch kernelName {
	case "bfs":
		return []Schedule{
			{Direction: DirOpt, Frontier: frontier.SparseList},
			{Direction: DirOpt, Frontier: frontier.Bitmap},
			{Direction: PushOnly, Frontier: frontier.SparseList},
		}
	case "sssp":
		return []Schedule{
			{Direction: PushOnly, BucketFusion: true},
			{Direction: PushOnly, BucketFusion: false},
		}
	case "pr":
		return []Schedule{
			{CacheTiling: false},
			{CacheTiling: true, NumSegments: segs},
			{CacheTiling: true, NumSegments: 2 * segs},
		}
	case "cc":
		return []Schedule{
			{ShortCircuit: false},
			{ShortCircuit: true},
		}
	default: // bc
		return []Schedule{
			{Direction: DirOpt, Frontier: frontier.Bitmap},
			{Direction: DirOpt, Frontier: frontier.SparseList},
		}
	}
}

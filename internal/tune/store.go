package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Entry is one tuned schedule: the winning point for a kernel on a concrete
// graph build under one rule set, with the time that won it.
type Entry struct {
	Kernel   string   `json:"kernel"`
	Epoch    uint64   `json:"epoch"` // graph.Graph.Epoch(): the PR 8 build identity
	Mode     string   `json:"mode"`  // kernel.Mode.String(), kept as a string to avoid a kernel import cycle
	Schedule Schedule `json:"schedule"`
	Seconds  float64  `json:"seconds"`
}

// storeFile is the on-disk JSON shape, versioned so a future layout change
// can refuse (rather than misread) old files.
type storeFile struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

const storeVersion = 1

// Store is a persistent map from (kernel, graph epoch, mode) to the tuned
// schedule. Keying on the graph's Epoch — the content identity of the CSR
// build — is what makes staleness structural: a regenerated or differently
// built graph has a different epoch, so its old entries are simply never
// found (invalidation by miss, not by heuristics). Lookup is RLock-only and
// allocation-free, cheap enough for a timed path; Put/Save are tuning-time
// operations.
type Store struct {
	mu      sync.RWMutex
	path    string
	entries map[string]Entry
}

// NewStore returns an empty store that Save will write to path.
func NewStore(path string) *Store {
	return &Store{path: path, entries: make(map[string]Entry)}
}

// LoadStore reads the store at path. A missing file yields an empty store
// (first tuning run); a malformed or wrong-version file is an error.
func LoadStore(path string) (*Store, error) {
	s := NewStore(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tune: reading schedule store: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tune: parsing schedule store %s: %w", path, err)
	}
	if f.Version != storeVersion {
		return nil, fmt.Errorf("tune: schedule store %s has version %d, want %d", path, f.Version, storeVersion)
	}
	for _, e := range f.Entries {
		s.entries[key(e.Kernel, e.Epoch, e.Mode)] = e
	}
	return s, nil
}

func key(kernel string, epoch uint64, mode string) string {
	return fmt.Sprintf("%s|%#x|%s", kernel, epoch, mode)
}

// Path returns the file this store loads from / saves to.
func (s *Store) Path() string { return s.path }

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Lookup returns the tuned schedule for (kernel, epoch, mode) if one is
// stored. Entries recorded for a different epoch of "the same" graph are
// invisible by construction — the stale-epoch invalidation the tests pin.
func (s *Store) Lookup(kernel string, epoch uint64, mode string) (Schedule, bool) {
	s.mu.RLock()
	e, ok := s.entries[key(kernel, epoch, mode)]
	s.mu.RUnlock()
	return e.Schedule, ok
}

// Put records (or replaces) the tuned schedule for (kernel, epoch, mode).
func (s *Store) Put(kernel string, epoch uint64, mode string, sched Schedule, seconds float64) {
	s.mu.Lock()
	s.entries[key(kernel, epoch, mode)] = Entry{
		Kernel: kernel, Epoch: epoch, Mode: mode, Schedule: sched, Seconds: seconds,
	}
	s.mu.Unlock()
}

// Save writes the store to its path, entries in deterministic key order so
// the file diffs cleanly across tuning runs.
func (s *Store) Save() error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := storeFile{Version: storeVersion, Entries: make([]Entry, 0, len(keys))}
	for _, k := range keys {
		f.Entries = append(f.Entries, s.entries[k])
	}
	s.mu.RUnlock()
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: encoding schedule store: %w", err)
	}
	if dir := filepath.Dir(s.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("tune: creating schedule store directory: %w", err)
		}
	}
	if err := os.WriteFile(s.path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("tune: writing schedule store: %w", err)
	}
	return nil
}

package tune

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gapbench/internal/frontier"
)

// TestSpaceDeterministic: the schedule space is a pure function of (kernel,
// n) — the property that makes stored schedules meaningful across runs.
func TestSpaceDeterministic(t *testing.T) {
	for _, k := range []string{"bfs", "sssp", "pr", "cc", "bc"} {
		a := Space(k, 1<<16)
		b := Space(k, 1<<16)
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule space", k)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: schedule space is not deterministic", k)
		}
	}
}

func TestSegmentsForScalesWithN(t *testing.T) {
	if s := SegmentsFor(100); s < 1 {
		t.Fatalf("SegmentsFor(100) = %d, want >= 1", s)
	}
	small, large := SegmentsFor(1<<16), SegmentsFor(1<<22)
	if large <= small {
		t.Fatalf("segments must grow with n: %d (2^16) vs %d (2^22)", small, large)
	}
}

func TestExploreReturnsTriedSchedule(t *testing.T) {
	cands := Space("bfs", 1<<12)
	var ran []Schedule
	best, trace := Explore(cands, 2, func(s Schedule) { ran = append(ran, s) })
	if len(trace) != len(cands) {
		t.Fatalf("trace covers %d candidates, want %d", len(trace), len(cands))
	}
	if len(ran) != 2*len(cands) {
		t.Fatalf("run invoked %d times, want trials*candidates = %d", len(ran), 2*len(cands))
	}
	found := false
	for _, c := range cands {
		if c == best {
			found = true
		}
	}
	if !found {
		t.Fatal("Explore returned a schedule outside the candidate space")
	}
	if BestSeconds(trace, best) < 0 {
		t.Fatal("BestSeconds missed a schedule present in the trace")
	}
	if BestSeconds(trace, Schedule{Direction: PullOnly, NumSegments: 999}) != -1 {
		t.Fatal("BestSeconds must report -1 for absent schedules")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "schedules.json")
	st := NewStore(path)
	sched := Schedule{Direction: PushOnly, Frontier: frontier.SparseList, BucketFusion: true, NumSegments: 4}
	st.Put("bfs", 42, "Optimized", sched, 0.125)
	st.Put("pr", 42, "Optimized", Schedule{CacheTiling: true, NumSegments: 8}, 2.5)
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	ld, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", ld.Len())
	}
	got, ok := ld.Lookup("bfs", 42, "Optimized")
	if !ok || got != sched {
		t.Fatalf("Lookup = %+v, %v; want %+v, true", got, ok, sched)
	}

	// Save is deterministic: byte-identical on re-save.
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.Save(); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("Save is not deterministic")
	}
}

// TestStaleEpochInvalidates: the epoch is part of the key, so a store tuned
// against different graph bytes misses cleanly instead of serving a schedule
// tuned for another graph.
func TestStaleEpochInvalidates(t *testing.T) {
	st := NewStore(filepath.Join(t.TempDir(), "s.json"))
	st.Put("bfs", 42, "Optimized", Schedule{Direction: PushOnly}, 1)
	if _, ok := st.Lookup("bfs", 43, "Optimized"); ok {
		t.Fatal("stale epoch must miss")
	}
	if _, ok := st.Lookup("bfs", 42, "Baseline"); ok {
		t.Fatal("different mode must miss")
	}
	if _, ok := st.Lookup("cc", 42, "Optimized"); ok {
		t.Fatal("different kernel must miss")
	}
	if _, ok := st.Lookup("bfs", 42, "Optimized"); !ok {
		t.Fatal("exact key must hit")
	}
}

func TestLoadStoreMissingFileIsEmpty(t *testing.T) {
	st, err := LoadStore(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing store file must load empty, got %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("missing store has %d entries", st.Len())
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(path); err == nil {
		t.Fatal("garbage store file must fail to load")
	}
}

package tune

import "time"

// TrialResult records one explored candidate.
type TrialResult struct {
	Schedule Schedule
	Seconds  float64
}

// Explore times run(candidate) `trials` times per candidate (min-of-trials,
// the GAP measurement convention) and returns the fastest schedule with the
// full exploration trace. This is the miniature counterpart of GraphIt's
// OpenTuner-based autotuner (§III-D: "explores the optimization space and
// finds high-performance schedules quickly"); the spaces here are small
// enough to sweep exhaustively. Tuning time is NOT part of any benchmark
// timing — the paper's Optimized rule set explicitly excludes it.
func Explore(candidates []Schedule, trials int, run func(Schedule)) (Schedule, []TrialResult) {
	if trials < 1 {
		trials = 1
	}
	results := make([]TrialResult, 0, len(candidates))
	best := candidates[0]
	bestSec := -1.0
	for _, cand := range candidates {
		sec := -1.0
		for t := 0; t < trials; t++ {
			start := time.Now()
			run(cand)
			if s := time.Since(start).Seconds(); sec < 0 || s < sec {
				sec = s
			}
		}
		results = append(results, TrialResult{Schedule: cand, Seconds: sec})
		if bestSec < 0 || sec < bestSec {
			best, bestSec = cand, sec
		}
	}
	return best, results
}

// BestSeconds returns the recorded time of sched in a trace (or -1 when the
// trace does not contain it) — the store's Seconds field for a Put after an
// Explore.
func BestSeconds(trace []TrialResult, sched Schedule) float64 {
	for _, r := range trace {
		if r.Schedule == sched {
			return r.Seconds
		}
	}
	return -1
}

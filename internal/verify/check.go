package verify

import (
	"fmt"
	"math"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// CheckBFS validates a parent array against the GAP specification: reachable
// vertices (per a serial BFS) must have a parent that is a real in-neighbor
// exactly one level closer to the source, unreachable vertices must have
// parent -1, and the source must be its own parent.
func CheckBFS(g *graph.Graph, src graph.NodeID, parent []graph.NodeID) error {
	n := int(g.NumNodes())
	if len(parent) != n {
		return fmt.Errorf("bfs: result length %d != n %d", len(parent), n)
	}
	depth := BFSDepths(g, src)
	for v := 0; v < n; v++ {
		p := parent[v]
		switch {
		case depth[v] < 0:
			if p != -1 {
				return fmt.Errorf("bfs: vertex %d is unreachable but has parent %d", v, p)
			}
		case graph.NodeID(v) == src:
			if p != src {
				return fmt.Errorf("bfs: source parent is %d, want self (%d)", p, src)
			}
		default:
			if p < 0 || int(p) >= n {
				return fmt.Errorf("bfs: vertex %d reachable (depth %d) but parent is %d", v, depth[v], p)
			}
			if depth[p] != depth[v]-1 {
				return fmt.Errorf("bfs: vertex %d at depth %d has parent %d at depth %d", v, depth[v], p, depth[p])
			}
			if !hasEdge(g, p, graph.NodeID(v)) {
				return fmt.Errorf("bfs: claimed parent edge %d->%d does not exist", p, v)
			}
		}
	}
	return nil
}

// hasEdge reports whether the directed edge u->v exists, by binary search in
// u's sorted out-adjacency.
func hasEdge(g *graph.Graph, u, v graph.NodeID) bool {
	neigh := g.OutNeighbors(u)
	lo, hi := 0, len(neigh)
	for lo < hi {
		mid := (lo + hi) / 2
		if neigh[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(neigh) && neigh[lo] == v
}

// CheckSSSP validates distances against a serial Dijkstra run.
func CheckSSSP(g *graph.Graph, src graph.NodeID, dist []kernel.Dist) error {
	n := int(g.NumNodes())
	if len(dist) != n {
		return fmt.Errorf("sssp: result length %d != n %d", len(dist), n)
	}
	want := Dijkstra(g, src)
	for v := 0; v < n; v++ {
		if dist[v] != want[v] {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
	return nil
}

// CheckCC validates component labels: vertices must share a label iff they
// share a weakly connected component (compared against the serial oracle).
func CheckCC(g *graph.Graph, labels []graph.NodeID) error {
	n := int(g.NumNodes())
	if len(labels) != n {
		return fmt.Errorf("cc: result length %d != n %d", len(labels), n)
	}
	want := Components(g)
	// For each oracle component, all members must share one result label and
	// that label must not be used by any other component.
	owner := map[graph.NodeID]graph.NodeID{} // result label -> oracle label
	repr := map[graph.NodeID]graph.NodeID{}  // oracle label -> result label
	for v := 0; v < n; v++ {
		rl, ol := labels[v], want[v]
		if prev, ok := repr[ol]; ok {
			if prev != rl {
				return fmt.Errorf("cc: vertices in one component carry labels %d and %d", prev, rl)
			}
		} else {
			repr[ol] = rl
		}
		if prev, ok := owner[rl]; ok {
			if prev != ol {
				return fmt.Errorf("cc: label %d spans two components", rl)
			}
		} else {
			owner[rl] = ol
		}
	}
	return nil
}

// CheckPR validates PageRank scores: they must sum to ~1 and applying one
// more Jacobi iteration must move them by less than the convergence budget —
// the same style of fixed-point residual check the GAP verifier performs.
// This accepts any correctly converged method (Jacobi or Gauss-Seidel).
func CheckPR(g *graph.Graph, ranks []float64) error {
	n := int(g.NumNodes())
	if len(ranks) != n {
		return fmt.Errorf("pr: result length %d != n %d", len(ranks), n)
	}
	if n == 0 {
		return nil
	}
	var sum float64
	for _, r := range ranks {
		if math.IsNaN(r) || r < 0 {
			return fmt.Errorf("pr: invalid score %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-3 {
		return fmt.Errorf("pr: scores sum to %v, want ~1", sum)
	}
	base := (1 - kernel.PRDamping) / float64(n)
	contrib := make([]float64, n)
	dangling := 0.0
	for u := 0; u < n; u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > 0 {
			contrib[u] = ranks[u] / float64(d)
		} else {
			dangling += ranks[u]
		}
	}
	danglingShare := kernel.PRDamping * dangling / float64(n)
	var residual float64
	for v := 0; v < n; v++ {
		s := 0.0
		for _, u := range g.InNeighbors(graph.NodeID(v)) {
			s += contrib[u]
		}
		residual += math.Abs(base + danglingShare + kernel.PRDamping*s - ranks[v])
	}
	// The kernels stop when the L1 delta drops below PRTolerance; allow a
	// small multiple of that to absorb floating-point reassociation.
	if residual > 4*kernel.PRTolerance {
		return fmt.Errorf("pr: fixed-point residual %v exceeds %v", residual, 4*kernel.PRTolerance)
	}
	return nil
}

// CheckBC validates normalized betweenness scores against the serial Brandes
// oracle for the same roots, within a floating-point reassociation tolerance.
func CheckBC(g *graph.Graph, sources []graph.NodeID, scores []float64) error {
	n := int(g.NumNodes())
	if len(scores) != n {
		return fmt.Errorf("bc: result length %d != n %d", len(scores), n)
	}
	want := Betweenness(g, sources)
	for v := 0; v < n; v++ {
		if math.IsNaN(scores[v]) {
			return fmt.Errorf("bc: score[%d] is NaN", v)
		}
		diff := math.Abs(scores[v] - want[v])
		if diff > 1e-6+1e-4*math.Abs(want[v]) {
			return fmt.Errorf("bc: score[%d] = %v, want %v", v, scores[v], want[v])
		}
	}
	return nil
}

// CheckTC validates a triangle count against the exact serial oracle.
func CheckTC(g *graph.Graph, count int64) error {
	want := Triangles(g)
	if count != want {
		return fmt.Errorf("tc: count = %d, want %d", count, want)
	}
	return nil
}

// Package verify holds serial oracle implementations of the six GAP kernels
// and GAP-spec result verifiers. Every timed benchmark run is checked against
// these; the paper's §VI recommends exactly this kind of formally specified
// verification, and this package is that recommendation made executable.
package verify

import (
	"container/heap"
	"math"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// BFSDepths runs a serial BFS from src over out-edges and returns per-vertex
// depths, -1 for unreachable vertices.
func BFSDepths(g *graph.Graph, src graph.NodeID) []int32 {
	n := g.NumNodes()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return depth
	}
	depth[src] = 0
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// BFSParents runs a serial BFS and returns a parent array under the shared
// result convention (parent[src] = src; -1 unreachable).
func BFSParents(g *graph.Graph, src graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// distHeap is a binary heap for Dijkstra.
type distHeap struct {
	node []graph.NodeID
	dist []kernel.Dist
}

func (h *distHeap) Len() int           { return len(h.node) }
func (h *distHeap) Less(i, j int) bool { return h.dist[i] < h.dist[j] }
func (h *distHeap) Swap(i, j int) {
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.dist[i], h.dist[j] = h.dist[j], h.dist[i]
}
func (h *distHeap) Push(x any) {
	p := x.([2]int32)
	h.node = append(h.node, p[0])
	h.dist = append(h.dist, p[1])
}
func (h *distHeap) Pop() any {
	n := len(h.node) - 1
	p := [2]int32{h.node[n], h.dist[n]}
	h.node = h.node[:n]
	h.dist = h.dist[:n]
	return p
}

// Dijkstra computes exact shortest-path distances from src, the oracle
// against which every delta-stepping implementation is validated.
func Dijkstra(g *graph.Graph, src graph.NodeID) []kernel.Dist {
	n := g.NumNodes()
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	h := &distHeap{}
	heap.Push(h, [2]int32{src, 0})
	for h.Len() > 0 {
		p := heap.Pop(h).([2]int32)
		u, d := p[0], p[1]
		if d > dist[u] {
			continue // stale entry
		}
		neigh := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range neigh {
			nd := d + ws[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, [2]int32{v, nd})
			}
		}
	}
	return dist
}

// PageRank runs serial Jacobi power iteration with the GAP parameters and
// returns the oracle score vector.
func PageRank(g *graph.Graph, maxIters int, tol float64) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		// Dangling mass (vertices with no out-edges) is redistributed
		// uniformly, the standard PageRank treatment.
		dangling := 0.0
		for u := 0; u < n; u++ {
			if d := g.OutDegree(graph.NodeID(u)); d > 0 {
				contrib[u] = ranks[u] / float64(d)
			} else {
				contrib[u] = 0
				dangling += ranks[u]
			}
		}
		danglingShare := kernel.PRDamping * dangling / float64(n)
		var delta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.NodeID(v)) {
				sum += contrib[u]
			}
			next[v] = base + danglingShare + kernel.PRDamping*sum
			delta += math.Abs(next[v] - ranks[v])
		}
		ranks, next = next, ranks
		if delta < tol {
			break
		}
	}
	return ranks
}

// Components labels weakly connected components with serial BFS over the
// undirected structure. Labels are the minimum vertex id in each component,
// giving a canonical labeling.
func Components(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	labels := make([]graph.NodeID, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]graph.NodeID, 0, 1024)
	for s := int32(0); s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			visit := func(v graph.NodeID) {
				if labels[v] < 0 {
					labels[v] = s
					queue = append(queue, v)
				}
			}
			for _, v := range g.OutNeighbors(u) {
				visit(v)
			}
			if g.Directed() {
				for _, v := range g.InNeighbors(u) {
					visit(v)
				}
			}
		}
	}
	return labels
}

// Betweenness runs serial Brandes' algorithm from the given roots and returns
// scores normalized by the maximum (the GAP reference's convention).
func Betweenness(g *graph.Graph, sources []graph.NodeID) []float64 {
	n := int(g.NumNodes())
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]graph.NodeID, 0, n)
	for _, src := range sources {
		for i := 0; i < n; i++ {
			depth[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		order = order[:0]
		depth[src] = 0
		sigma[src] = 1
		queue := []graph.NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range g.OutNeighbors(u) {
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			for _, v := range g.OutNeighbors(u) {
				if depth[v] == depth[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != src {
				scores[u] += delta[u]
			}
		}
	}
	normalizeBC(scores)
	return scores
}

// normalizeBC divides scores by the maximum score, matching the GAP
// reference output convention. A zero vector is left unchanged.
func normalizeBC(scores []float64) {
	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		for i := range scores {
			scores[i] /= maxScore
		}
	}
}

// Triangles counts triangles exactly with sorted-adjacency merge
// intersections on the undirected view, each triangle counted once.
func Triangles(g *graph.Graph) int64 {
	u := g.Undirected()
	var count int64
	n := u.NumNodes()
	for a := int32(0); a < n; a++ {
		na := u.OutNeighbors(a)
		for _, b := range na {
			if b <= a {
				continue
			}
			// Count common neighbors c with c > b (a < b < c exactly once).
			nb := u.OutNeighbors(b)
			i, j := 0, 0
			for i < len(na) && j < len(nb) {
				switch {
				case na[i] < nb[j]:
					i++
				case na[i] > nb[j]:
					j++
				default:
					if na[i] > b {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

package verify_test

import (
	"testing"
	"testing/quick"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/verify"
)

func buildWeighted(t *testing.T, edges []graph.WEdge, n int32, directed bool) *graph.Graph {
	t.Helper()
	g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: n, Directed: directed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// diamond is 0->1->3, 0->2->3 with distinct weights and an unreachable 4.
func diamond(t *testing.T) *graph.Graph {
	return buildWeighted(t, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 5},
		{U: 1, V: 3, W: 10}, {U: 2, V: 3, W: 2},
	}, 5, true)
}

func TestBFSOracles(t *testing.T) {
	g := diamond(t)
	depth := verify.BFSDepths(g, 0)
	want := []int32{0, 1, 1, 2, -1}
	for v, d := range want {
		if depth[v] != d {
			t.Fatalf("depth[%d] = %d, want %d", v, depth[v], d)
		}
	}
	parent := verify.BFSParents(g, 0)
	if parent[0] != 0 || parent[4] != -1 {
		t.Fatalf("parents = %v", parent)
	}
	if err := verify.CheckBFS(g, 0, parent); err != nil {
		t.Fatalf("oracle parents rejected: %v", err)
	}
}

func TestCheckBFSRejectsBadTrees(t *testing.T) {
	g := diamond(t)
	good := verify.BFSParents(g, 0)

	cases := map[string]func(p []graph.NodeID){
		"wrong length":      nil,
		"unreachable claim": func(p []graph.NodeID) { p[4] = 0 },
		"missing parent":    func(p []graph.NodeID) { p[1] = -1 },
		"wrong depth":       func(p []graph.NodeID) { p[3] = 0 }, // 0->3 edge does not exist
		"source not self":   func(p []graph.NodeID) { p[0] = 1 },
	}
	for name, mutate := range cases {
		p := append([]graph.NodeID(nil), good...)
		if mutate == nil {
			p = p[:len(p)-1]
		} else {
			mutate(p)
		}
		if err := verify.CheckBFS(g, 0, p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDijkstraAndCheckSSSP(t *testing.T) {
	g := diamond(t)
	dist := verify.Dijkstra(g, 0)
	want := []kernel.Dist{0, 1, 5, 7, kernel.Inf}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if err := verify.CheckSSSP(g, 0, dist); err != nil {
		t.Fatalf("oracle distances rejected: %v", err)
	}
	bad := append([]kernel.Dist(nil), dist...)
	bad[3] = 6
	if err := verify.CheckSSSP(g, 0, bad); err == nil {
		t.Error("wrong distance accepted")
	}
}

func TestComponentsAndCheckCC(t *testing.T) {
	g := buildWeighted(t, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1},
	}, 5, false)
	labels := verify.Components(g)
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[4] == labels[0] {
		t.Fatalf("distinct components share labels: %v", labels)
	}
	if err := verify.CheckCC(g, labels); err != nil {
		t.Fatalf("oracle labels rejected: %v", err)
	}
	// Any consistent relabeling is fine.
	relabeled := []graph.NodeID{9, 9, 7, 7, 3}
	if err := verify.CheckCC(g, relabeled); err != nil {
		t.Fatalf("consistent relabeling rejected: %v", err)
	}
	// Splitting a component is not.
	if err := verify.CheckCC(g, []graph.NodeID{9, 8, 7, 7, 3}); err == nil {
		t.Error("split component accepted")
	}
	// Merging two components is not.
	if err := verify.CheckCC(g, []graph.NodeID{9, 9, 9, 9, 3}); err == nil {
		t.Error("merged components accepted")
	}
}

func TestCheckCCDirectedWeak(t *testing.T) {
	// 0->1, 2->1: weakly one component.
	g := buildWeighted(t, []graph.WEdge{{U: 0, V: 1, W: 1}, {U: 2, V: 1, W: 1}}, 3, true)
	if err := verify.CheckCC(g, []graph.NodeID{5, 5, 5}); err != nil {
		t.Fatalf("weak connectivity not honored: %v", err)
	}
}

func TestPageRankOracleAndCheck(t *testing.T) {
	g, err := generate.Kron(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	ranks := verify.PageRank(g, kernel.PRMaxIters, kernel.PRTolerance)
	if err := verify.CheckPR(g, ranks); err != nil {
		t.Fatalf("oracle PR rejected: %v", err)
	}
	bad := append([]float64(nil), ranks...)
	bad[0] += 0.2
	bad[1] -= 0.2
	if err := verify.CheckPR(g, bad); err == nil {
		t.Error("perturbed PR accepted")
	}
	uniform := make([]float64, len(ranks))
	for i := range uniform {
		uniform[i] = 1 / float64(len(uniform))
	}
	if err := verify.CheckPR(g, uniform); err == nil {
		t.Error("unconverged uniform PR accepted")
	}
}

func TestBetweennessOracleAndCheck(t *testing.T) {
	// Path 0-1-2-3: vertex 1 and 2 lie on all long shortest paths.
	g := buildWeighted(t, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}, 4, false)
	src := []graph.NodeID{0, 3}
	scores := verify.Betweenness(g, src)
	if scores[1] != 1 || scores[2] != 1 {
		t.Fatalf("scores = %v, want middles at 1.0 (normalized)", scores)
	}
	if scores[0] != 0 || scores[3] != 0 {
		t.Fatalf("endpoints scored: %v", scores)
	}
	if err := verify.CheckBC(g, src, scores); err != nil {
		t.Fatalf("oracle BC rejected: %v", err)
	}
	bad := append([]float64(nil), scores...)
	bad[1] = 0.5
	if err := verify.CheckBC(g, src, bad); err == nil {
		t.Error("wrong BC accepted")
	}
}

func TestTrianglesOracleAndCheck(t *testing.T) {
	// Two triangles sharing an edge: 0-1-2 and 1-2-3.
	g := buildWeighted(t, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 1, V: 3, W: 1}, {U: 2, V: 3, W: 1},
	}, 4, false)
	if got := verify.Triangles(g); got != 2 {
		t.Fatalf("triangles = %d, want 2", got)
	}
	if err := verify.CheckTC(g, 2); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckTC(g, 3); err == nil {
		t.Error("wrong count accepted")
	}
}

func TestTrianglesDirectedCountsUndirected(t *testing.T) {
	// Directed cycle 0->1->2->0 forms one undirected triangle.
	g := buildWeighted(t, []graph.WEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
	}, 3, true)
	if got := verify.Triangles(g); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}

// Property: SSSP distances satisfy the triangle inequality over every edge
// and equal zero exactly at the source.
func TestDijkstraTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := generate.Urand(6, seed)
		if err != nil {
			return false
		}
		src := graph.NodeID(0)
		dist := verify.Dijkstra(g, src)
		if dist[src] != 0 {
			return false
		}
		for u := int32(0); u < g.NumNodes(); u++ {
			if dist[u] == kernel.Inf {
				continue
			}
			ws := g.OutWeights(u)
			for i, v := range g.OutNeighbors(u) {
				if dist[v] > dist[u]+ws[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS depths are within hop-count bounds of Dijkstra distances
// scaled by weights — specifically, depth <= dist always (weights >= 1).
func TestDepthLowerBoundsDistance(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := generate.Twitter(6, seed)
		if err != nil {
			return false
		}
		depth := verify.BFSDepths(g, 0)
		dist := verify.Dijkstra(g, 0)
		for v := range depth {
			if (depth[v] < 0) != (dist[v] == kernel.Inf) {
				return false // reachability must agree
			}
			if depth[v] >= 0 && dist[v] < depth[v] {
				return false // every hop costs at least 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

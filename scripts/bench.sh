#!/usr/bin/env sh
# bench.sh — the PR's benchmark evidence, kept cheap enough for CI.
#
# Runs each benchmark group with -benchtime=1x, four trials per process and
# two processes per group (minimum-of-trials analysis left to the
# reader/tooling): the first trial of a fresh process pays cold page faults
# for freshly generated inputs, so the pool keeps the min estimator off the
# warm-up, and splitting it across processes keeps a single host slowdown
# burst from covering every trial of a cell. The scheduler-bound ablation
# group gets an even deeper pool, see below.
#
#   1. BenchmarkBuild — the counting-sort CSR ingest pipeline vs the
#      retained sort-based reference builder (SortRef), across the three GAP
#      degree shapes x directed/undirected x weighted/unweighted. The Kron
#      cells carry 2^18 edges; Counting must beat SortRef by >= 2x there.
#   2. BenchmarkTranspose — the same histogram/scan/scatter pipeline under
#      GraphBLAS's 64-bit indices (grb.Matrix.Transpose).
#   3. BenchmarkAblationRegionLaunch — the executor ablation behind the
#      par.Machine refactor: per-region goroutine fork-join vs the persistent
#      pooled machine, across region size x round count shapes. The
#      small-region/many-round corner is the Road-shaped workload the
#      paper's SS V-A launch-overhead analysis is about; pooled dispatch must
#      win it.
#   4. One round-heavy suite cell — GAP/BFS on Road at the test scale
#      (GAPBENCH_SCALE, default 10). Road's diameter makes BFS run hundreds
#      of sliding-queue rounds per traversal, so this cell exercises the
#      machine exactly where per-round dispatch cost shows up end to end.
#   5. The perf-lint hot-loop cells — BFS, PR, and CC on Kron for the three
#      frameworks whose inner loops the `gapvet -perf` findings rewrote
#      (GAP, GraphIt, SuiteSparse/LAGraph): hoisted per-round heap cells,
#      fast-path inline splits, and tail-range BCE fixes all land inside
#      these kernels, so their timings are the deltas ISSUE 7 records.
#   6. BenchmarkGraphIO — the storage-arena evidence (DESIGN.md §3):
#      Regenerate (generator + counting-sort build) vs LoadV1 (streaming
#      decode-and-copy) vs MmapV2 (header check + mmap, O(header)) for Kron,
#      once at the default test scale and once at scale 20
#      (GAPBENCH_MMAP_SCALE=20, 2^20 vertices / 2^24 directed edges), where
#      the mmap cell must beat regeneration by >= 10x.
#   7. BenchmarkDirection — the direction-dispatch evidence (DESIGN.md
#      "Direction dispatch and the shared frontier library"): LAGraph BFS
#      pinned to push, pinned to pull, and under the Beamer auto dispatcher,
#      per suite graph. Auto must stay within a few percent of the better
#      pinned direction on every graph, and the Kron cell is the >= 1.5x
#      headline against the PR 8 Baseline/BFS/Kron/SuiteSparse cell.
#   8. The lagraph suite cells the frontier/dispatch rewrite touches —
#      BFS, PR, CC, BC on every graph for SuiteSparse — so regressions in
#      the scratch-vector hoists and the BC batched forward sweep show up
#      next to the direction wins.
#   9. The serving layer (DESIGN.md §11): a gapd daemon over all five suite
#      graphs, driven by cmd/workload. Closed-loop cells at 1, 4, and 16
#      clients record qps and the p50/p99/p999 tails; then an open-loop
#      Poisson cell offers 80% of the measured 16-client capacity, where
#      admission control must shed < 1% (the shedrate extra on the
#      Serve/all/open80 line — a warning prints if it doesn't hold).
#
# Output: BENCH_PR10.json — one JSON object per benchmark line, fields
# {bench, ns_per_op, extra}, plus the raw `go test -bench` text on stderr so
# a human watching CI still sees the familiar table.

set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
RAW="$(mktemp)"
SERVE_DIR="$(mktemp -d)"
trap 'rm -f "$RAW"; rm -rf "$SERVE_DIR"' EXIT

run_bench() {
	# $1: -bench regexp. Two separate processes of four trials each rather
	# than one of eight: host slowdowns come in bursts that can cover a whole
	# process, so splitting the pool across processes gives the min estimator
	# two independent time windows per cell.
	for _pass in 1 2; do
		go test -run '^$' -bench "$1" -benchtime=1x -count=4 . | tee -a "$RAW" >&2
	done
}

: >"$RAW"

printf '\n== ingest: counting-sort pipeline vs sort-based reference\n' >&2
run_bench 'BenchmarkBuild'

printf '\n== ingest: GraphBLAS transpose (64-bit indices)\n' >&2
run_bench 'BenchmarkTranspose'

printf '\n== ablation: region launch (fork-join vs pooled machine)\n' >&2
# Scheduler-bound cells: each op is `rounds` goroutine wake storms, so OS
# scheduling events landing inside a 1x op swing single trials ~2x on a
# one-core host. A deeper trial pool across three process windows keeps the
# min estimator stable.
for _pass in 1 2 3; do
	go test -run '^$' -bench 'BenchmarkAblationRegionLaunch' -benchtime=1x -count=5 . | tee -a "$RAW" >&2
done

printf '\n== round-heavy suite cell: GAP/BFS/Road\n' >&2
run_bench 'BenchmarkSuite/Baseline/BFS/Road/GAP$'

printf '\n== perf-lint hot-loop cells: BFS|PR|CC on Kron, GAP|GraphIt|SuiteSparse\n' >&2
run_bench 'BenchmarkSuite/Baseline/(BFS|PR|CC)/Kron/(GAP|GraphIt|SuiteSparse)$'

printf '\n== graph storage: regenerate vs v1 load vs v2 mmap (test scale)\n' >&2
run_bench 'BenchmarkGraphIO'

printf '\n== graph storage at scale 20: the build-once-load-many headline\n' >&2
# One process is enough here: the cells are seconds-scale (regeneration) vs
# a flat mmap, and the factor under test is 10^5 — far above host noise.
GAPBENCH_MMAP_SCALE=20 go test -run '^$' -bench 'BenchmarkGraphIO' -benchtime=1x -count=4 . | tee -a "$RAW" >&2

printf '\n== direction dispatch: LAGraph BFS push vs pull vs auto per graph\n' >&2
run_bench 'BenchmarkDirection'

printf '\n== frontier/dispatch consumers: SuiteSparse BFS|PR|CC|BC cells\n' >&2
run_bench 'BenchmarkSuite/Baseline/(BFS|PR|CC|BC)/.*/SuiteSparse$'

printf '\n== serving layer: gapd over five graphs, 1/4/16 clients, 80%%-capacity shed\n' >&2
go build -o "$SERVE_DIR/gapd" ./cmd/gapd
go build -o "$SERVE_DIR/workload" ./cmd/workload
"$SERVE_DIR/gapd" -listen "unix:$SERVE_DIR/gapd.sock" -scale "${GAPBENCH_SCALE:-10}" \
	-graphdir "$SERVE_DIR/graphs" -pool 4 -workers 4 2>"$SERVE_DIR/gapd.log" &
GAPD_PID=$!
for _i in $(seq 1 600); do
	[ -S "$SERVE_DIR/gapd.sock" ] && break
	sleep 0.1
done
[ -S "$SERVE_DIR/gapd.sock" ] || { echo "gapd never bound its socket:" >&2; cat "$SERVE_DIR/gapd.log" >&2; exit 1; }
for C in 1 4 16; do
	"$SERVE_DIR/workload" -addr "unix:$SERVE_DIR/gapd.sock" -clients "$C" -duration 5s \
		-zipf 1.3 -bench "Serve/all/c$C" | tee -a "$RAW" >&2
done
# The 80%-capacity open-loop cell: capacity is the 16-client closed-loop qps.
CAP=$(awk '/^BenchmarkServe\/all\/c16 /{print $5}' "$RAW" | tail -1)
RATE80=$(awk -v c="$CAP" 'BEGIN{printf "%.0f", 0.8*c}')
printf 'measured 16-client capacity %s qps; offering %s qps (80%%)\n' "$CAP" "$RATE80" >&2
"$SERVE_DIR/workload" -addr "unix:$SERVE_DIR/gapd.sock" -clients 16 -duration 5s \
	-zipf 1.3 -rate "$RATE80" -bench "Serve/all/open80" | tee -a "$RAW" >&2
kill -TERM "$GAPD_PID"
wait "$GAPD_PID"
SHED=$(awk '/^BenchmarkServe\/all\/open80 /{print $(NF-1)}' "$RAW" | tail -1)
awk -v s="$SHED" 'BEGIN{ if (s+0 >= 0.01) printf "warning: shed rate %s at 80%% of capacity exceeds the 1%% target\n", s }' >&2

# Fold the benchmark lines into JSON. awk keeps the script dependency-free:
# each line "BenchmarkX/sub-8  1  12345 ns/op [extra...]" becomes one object.
awk '
BEGIN { print "[" }
/^Benchmark/ {
	extra = ""
	for (i = 5; i <= NF; i++) extra = extra (extra == "" ? "" : " ") $i
	if (n++) printf ",\n"
	printf "  {\"bench\": \"%s\", \"ns_per_op\": %s, \"extra\": \"%s\"}", $1, $3, extra
}
END { if (n) printf "\n"; print "]" }
' "$RAW" >"$OUT"

printf '\nwrote %s (%s benchmark lines)\n' "$OUT" "$(grep -c '"bench"' "$OUT")" >&2

#!/usr/bin/env sh
# check.sh — the pre-PR gate (documented in CONTRIBUTING.md).
#
# Runs, in order:
#   1. go build ./...                 everything compiles
#   2. go vet ./...                   the standard toolchain checks
#   3. gapvet ./...                   this repo's own invariants (see DESIGN.md);
#      asserted to exit 0 in under 60 seconds — the analysis is part of the
#      inner loop, so its cost is a gated budget, not a trend
#   4. gapvet -perf ./...             the compiler-assisted perf-lint tier
#      (DESIGN.md §8 "Compiler-facts join"): harvests escape/inline/BCE
#      diagnostics from a -gcflags compiler run and joins them against the
#      timed-region dataflow. The harvest invokes the compiler, so this tier
#      carries its own 120-second budget, separate from the pure-AST tier —
#      a cold -gcflags build cache pays once, warm runs land in seconds
#   5. go test ./...                  the full tier-1 suite
#   6. go test -race -short <tier>    the race-detector smoke tier: the
#      parallel substrate (par), the most race-prone executor (galois), and
#      the harness that drives every framework (core), on tiny graphs so the
#      whole sweep finishes in seconds.
#   7. go test -tags=grbcheck <tier>  the grbcheck sanitizer tier: rebuilds
#      the GraphBLAS substrate (and the shared frontier library, which keys
#      its conversion checks off the same tag) with runtime invariant
#      assertions enabled and re-runs grb, frontier, and their consumer
#      (lagraph) at -short scale, so a structurally corrupt vector/matrix/
#      frontier — or a direction dispatch whose push and pull products
#      disagree — panics at the operation boundary that received it (see
#      DESIGN.md "Runtime sanitizer").
#   8. go test -tags=graphguard <tier> the graphguard sanitizer tier: rebuilds
#      with CSR seal checks armed and re-runs graph plus the runner, so a
#      kernel that mutates shared graph memory panics at the trial boundary
#      naming the corrupted array (see DESIGN.md §9 "Graph seal").
#   9. go test -tags=chaos -short <tier> the fault-injection tier: rebuilds
#      the chaos injector armed and runs the end-to-end fault matrix
#      (DESIGN.md §9): injected panics, stalls, hangs, and output
#      corruption must surface as exactly the right per-cell status while
#      the suite, its journal, and its resume path keep working. A second
#      pass with both chaos and graphguard armed closes the loop: the
#      CorruptGraph fault must be caught by the seal check as Panicked.
#  10. go test -tags='chaos graphguard servecheck' <serve> the serving-layer
#      fault tier: the gapd daemon machinery (internal/serve) re-run with
#      the chaos injector, graph seal checks, and the lease-leak assertion
#      all armed — injected panics/stalls/hangs/corruption against a live
#      server must shed, retry, quarantine, and drain clean (DESIGN.md §11).
#  11. graphgen + gapbench graph-store e2e tier: generate the five suite
#      graphs once as format-v2 .sg files, then run a gapbench smoke over
#      them via -graphfile, so the whole serialize -> mmap-load -> provenance
#      -> kernel-verify chain is exercised exactly the way a measurement run
#      uses it (see DESIGN.md §3 "The storage arena").
#  12. gapbench -tune twice-through tier: runs the autotuner against a tiny
#      Kron build with a fresh schedule store, then runs it again on the same
#      store. The first pass must report tuning (writing the store), the
#      second must report reusing the stored schedule — the persistence
#      contract `-tune` exists for (see DESIGN.md "Schedule persistence").
#  13. gapd serving smoke tier: start the daemon on a unix socket over the
#      tier-11 graph files (servecheck armed), drive a mixed closed-loop
#      burst with cmd/workload, and require zero non-OK non-shed responses;
#      then SIGTERM and require the drain to finish within its budget with
#      no leaked lease (the servecheck assertion panics the exit otherwise).
#  14. go test -bench=. -benchtime=1x the benchmark bit-rot guard: every
#      benchmark (suite cells, ablations, and the ingest-pipeline
#      Build/Transpose groups — scripts/bench.sh's evidence included)
#      runs exactly one iteration at the test scale, so a
#      signature drift or a panic on a bench-only path fails the gate
#      instead of surfacing months later in a measurement run.
#
# Any failure stops the script with a non-zero exit.

set -eu

cd "$(dirname "$0")/.."

say() { printf '\n== %s\n' "$*"; }

say "go build ./..."
go build ./...

say "go vet ./..."
go vet ./...

say "gapvet ./... (must exit 0 in <60s)"
gapvet_start=$(date +%s)
go run ./cmd/gapvet ./...
gapvet_elapsed=$(( $(date +%s) - gapvet_start ))
if [ "$gapvet_elapsed" -ge 60 ]; then
    echo "gapvet took ${gapvet_elapsed}s, budget is 60s" >&2
    exit 1
fi
echo "gapvet clean in ${gapvet_elapsed}s"

say "gapvet -perf ./... (compiler harvest included; must exit 0 in <120s)"
perf_start=$(date +%s)
go run ./cmd/gapvet -perf ./...
perf_elapsed=$(( $(date +%s) - perf_start ))
if [ "$perf_elapsed" -ge 120 ]; then
    echo "gapvet -perf took ${perf_elapsed}s, budget is 120s" >&2
    exit 1
fi
echo "gapvet -perf clean in ${perf_elapsed}s"

say "go test ./..."
go test ./...

say "race smoke tier (go test -race -short)"
go test -race -short ./internal/par/... ./internal/galois/... ./internal/core/...

say "grbcheck sanitizer tier (go test -tags=grbcheck -short)"
go test -tags=grbcheck -short ./internal/grb/ ./internal/frontier/ ./internal/lagraph/

say "graphguard sanitizer tier (go test -tags=graphguard -short)"
go test -tags=graphguard -short ./internal/graph/ ./internal/core/

say "chaos fault-injection tier (go test -tags=chaos -short)"
go test -tags=chaos -short ./internal/core/ ./internal/chaos/

say "chaos+graphguard tier (go test -tags='chaos graphguard' -short)"
go test -tags='chaos graphguard' -short ./internal/core/

say "serving-layer fault tier (go test -tags='chaos graphguard servecheck' -short)"
go test -tags='chaos graphguard servecheck' -short ./internal/serve/

say "graph-store e2e tier (graphgen once, gapbench mmap smoke)"
GDIR="$(mktemp -d)"
TDIR="$(mktemp -d)"
trap 'rm -rf "$GDIR" "$TDIR"' EXIT
go run ./cmd/graphgen -out "$GDIR" -scale 6 >/dev/null
SGFILES="$(ls "$GDIR"/*.sg | tr '\n' ',' | sed 's/,$//')"
go run ./cmd/gapbench -table IV -graphfile "$SGFILES" -kernels BFS,TC -frameworks GAP -mode baseline -trials 1 -q >/dev/null
echo "graph-store e2e ok (5 graphs saved, mmap-loaded, verified)"

say "schedule-store persistence tier (gapbench -tune twice over one store)"
TUNE_ARGS="-tune -tunefile $TDIR/schedules.json -graphs Kron -scale 6 -kernels BFS -frameworks GraphIt -mode optimized -trials 1 -q"
go run ./cmd/gapbench $TUNE_ARGS 2>"$TDIR/first.log" >/dev/null
grep -q 'tune: tuned 1 schedules, reused 0' "$TDIR/first.log" || {
    echo "first -tune run did not tune a fresh schedule:" >&2
    cat "$TDIR/first.log" >&2
    exit 1
}
go run ./cmd/gapbench $TUNE_ARGS 2>"$TDIR/second.log" >/dev/null
grep -q 'tune: tuned 0 schedules, reused 1' "$TDIR/second.log" || {
    echo "second -tune run re-tuned instead of loading the stored schedule:" >&2
    cat "$TDIR/second.log" >&2
    exit 1
}
echo "schedule store persisted and reloaded ok"

say "gapd serving smoke tier (daemon + mixed burst + SIGTERM drain)"
go build -tags=servecheck -o "$TDIR/gapd" ./cmd/gapd
go build -o "$TDIR/workload" ./cmd/workload
"$TDIR/gapd" -listen "unix:$TDIR/gapd.sock" -graphfile "$SGFILES" -pool 2 -workers 2 \
    2>"$TDIR/gapd.log" &
GAPD_PID=$!
for _i in $(seq 1 100); do
    [ -S "$TDIR/gapd.sock" ] && break
    sleep 0.1
done
[ -S "$TDIR/gapd.sock" ] || { echo "gapd never bound its socket:" >&2; cat "$TDIR/gapd.log" >&2; exit 1; }
"$TDIR/workload" -addr "unix:$TDIR/gapd.sock" -clients 8 -duration 3s -zipf 1.3 \
    >"$TDIR/drive.log" 2>&1 || { cat "$TDIR/drive.log" >&2; exit 1; }
# The gate: every response is either OK or a deliberate shed — a failed
# query (deadline, panic, bad request) under plain load is a serving bug.
grep -q 'failed 0)' "$TDIR/drive.log" || {
    echo "gapd smoke burst produced failed responses:" >&2
    cat "$TDIR/drive.log" >&2
    exit 1
}
drain_start=$(date +%s)
kill -TERM "$GAPD_PID"
wait "$GAPD_PID" || { echo "gapd exited non-zero on SIGTERM drain:" >&2; cat "$TDIR/gapd.log" >&2; exit 1; }
drain_elapsed=$(( $(date +%s) - drain_start ))
if [ "$drain_elapsed" -gt 10 ]; then
    echo "gapd drain took ${drain_elapsed}s, budget is 10s" >&2
    exit 1
fi
echo "gapd smoke ok ($(grep -o 'queries [0-9]*' "$TDIR/drive.log" | head -1), drained in ${drain_elapsed}s)"

say "benchmark bit-rot guard (go test -run='^$' -bench=. -benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x .

say "all checks passed"
